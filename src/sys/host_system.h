/**
 * @file
 * HostSystem: the hypervisor host -- DRAM, buddy allocator, background
 * memory noise, and VM lifecycle.
 *
 * Three presets reproduce the paper's evaluation machines (Section 5):
 *   S1 -- Core i3-10100 host, 16 GB DDR4-2666, plain KVM;
 *   S2 -- Xeon E3-2124 host, same DIMMs, plain KVM;
 *   S3 -- S1's hardware running a single-node OpenStack (DevStack)
 *         deployment, which leaves a much larger population of
 *         unmovable "noise" pages and keeps churning them.
 */

#ifndef HYPERHAMMER_SYS_HOST_SYSTEM_H
#define HYPERHAMMER_SYS_HOST_SYSTEM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/archive.h"
#include "base/rng.h"
#include "base/sim_clock.h"
#include "base/status.h"
#include "dram/dram_system.h"
#include "fault/fault.h"
#include "mm/buddy_allocator.h"
#include "vm/virtual_machine.h"

namespace hh::sys {

/** Host background-memory workload parameters. */
struct NoiseConfig
{
    /** Unmovable kernel allocations made at boot and kept (pages). */
    uint64_t kernelResidentPages = 40'000;
    /**
     * Small-order MIGRATE_UNMOVABLE *free* pages left behind by boot
     * (the Figure 3 "noise pages" starting level). Produced by
     * allocating and randomly freeing unmovable pages so the frees do
     * not coalesce back into large blocks.
     */
    uint64_t unmovableFreePages = 21'000;
    /** Movable page-cache pages resident after boot. */
    uint64_t pageCachePages = 120'000;
    /**
     * Background churn per noiseTick(): pages allocated and freed by
     * host services while the attack runs (OpenStack's agents on S3).
     * Zero disables churn.
     */
    uint64_t churnPagesPerTick = 0;
};

/** Full host configuration. */
struct SystemConfig
{
    std::string name = "S1";
    dram::DramConfig dram;
    NoiseConfig noise;
    uint64_t seed = 1;
    /**
     * Fault-injection schedule. Empty (the default) means no injector
     * is built and every HH_FAULT_POINT is a branch on a null pointer.
     */
    fault::FaultPlan faults;
    /**
     * Physical isolation domains (the mitigation layer). Empty -- the
     * default -- is the undefended single-zone buddy allocator;
     * defenses install Siloz/CATT-style partitionings here before the
     * host is constructed.
     */
    mm::DomainLayout domains;

    /** Paper system S1: i3-10100 host. */
    static SystemConfig s1(uint64_t seed = 1);
    /** Paper system S2: Xeon E3-2124 host. */
    static SystemConfig s2(uint64_t seed = 1);
    /** Paper system S3: S1 hardware + OpenStack noise. */
    static SystemConfig s3(uint64_t seed = 1);

    /** Scale host memory (and the row range) down for fast tests. */
    SystemConfig &withMemory(uint64_t bytes);
    /** Replace the RNG seed everywhere it matters. */
    SystemConfig &withSeed(uint64_t seed);
    /** Install a fault-injection plan. */
    SystemConfig &withFaults(fault::FaultPlan plan);
};

/**
 * The host: owns the virtual clock, the DRAM device, the buddy
 * allocator and the boot-time memory footprint; creates VMs.
 */
class HostSystem
{
  private:
    /** Restrict the template/clone/trial ctors to the static makers. */
    struct TemplateTag
    {};
    struct CloneTag
    {};
    struct TrialTag
    {};

  public:
    explicit HostSystem(SystemConfig config);
    ~HostSystem();

    /** Deep copies are banned: clone via fork() / forkTrial(). */
    HostSystem(const HostSystem &) = delete;
    HostSystem &operator=(const HostSystem &) = delete;

    /** @name Copy-on-write world forking */
    /// @{

    /**
     * Build a *pristine* trial template: constructed exactly like
     * HostSystem(config) but stopping before bootHost(), with the
     * memory backend frozen. The template captures every piece of
     * world state that is invariant across trial seeds -- the DRAM
     * geometry, the seed-derived fault oracle and weak-row index, the
     * frame database and initial free lists -- and shares them with
     * each fork. Trial-varying state (host rng, fault-injector
     * cursors, the boot footprint) is recreated per forkTrial() from
     * the trial's own seed, which is what makes a forked trial
     * bitwise-identical to a freshly constructed HostSystem.
     *
     * The returned host is const: a template must never be mutated
     * while forks are being taken from it.
     */
    static std::unique_ptr<const HostSystem>
    makeForkTemplate(SystemConfig config);

    /**
     * Fork a trial world from a pristine template and boot it with
     * @p trial_cfg's seed. @p trial_cfg must be the template's config
     * with only the seed changed (asserted on the cheap proxies).
     * Produces bit-for-bit the state of HostSystem(trial_cfg) at
     * O(pages the boot touches) instead of a full world rebuild.
     * Safe to call concurrently on one template.
     */
    static std::unique_ptr<HostSystem>
    forkTrial(const HostSystem &tmpl, const SystemConfig &trial_cfg);

    /**
     * Copy-on-write clone of this (booted) host: same config, same
     * seed, same state -- the forked world diverges from the original
     * only through its own subsequent writes. Costs O(overlay pages);
     * call freezeMemory() first to make the memory share O(1). VMs
     * are owned by callers and do not travel with the fork.
     */
    std::unique_ptr<HostSystem> fork() const;

    /**
     * Publish the memory backend's current contents as the shared
     * immutable template so subsequent fork()s share rather than copy
     * them. Idempotent; O(touched pages).
     */
    void freezeMemory() { dramSys->backend().freeze(); }

    /** True for hosts built by makeForkTemplate() (never booted). */
    bool isPristineTemplate() const { return pristineTemplate; }

    /** Tag ctors backing the static makers; tags are private. */
    HostSystem(TemplateTag, SystemConfig config);
    HostSystem(CloneTag, const HostSystem &src);
    HostSystem(TrialTag, const HostSystem &tmpl,
               const SystemConfig &trial_cfg);
    /// @}

    const SystemConfig &config() const { return cfg; }
    base::SimClock &clock() { return simClock; }
    dram::DramSystem &dram() { return *dramSys; }
    mm::BuddyAllocator &buddy() { return *allocator; }

    /** The host's fault injector; null when no plan is installed. */
    fault::FaultInjector *faults() { return injector.get(); }

    /** Create (boot) a VM. */
    std::unique_ptr<vm::VirtualMachine> createVm(const vm::VmConfig &cfg);

    /**
     * The Figure 3 metric: free MIGRATE_UNMOVABLE pages in orders
     * 0..8 (anything an order-0 EPT/IOPT allocation would prefer over
     * a released order-9 block), plus the PCP front-end.
     */
    uint64_t noisePages() const;

    /** Free-list census passthrough. */
    mm::PageTypeInfo pageTypeInfo() const { return allocator->pageTypeInfo(); }

    /**
     * One step of background host activity: services allocate and
     * free unmovable pages (churnPagesPerTick of each), perturbing the
     * free lists while an attack runs. Charges virtual time.
     */
    void noiseTick();

    /** Census of allocated frames by use (Table 2's E counts, etc.). */
    uint64_t countFramesByUse(mm::PageUse use, uint16_t owner = 0) const;

    /**
     * Page-cache turnover: evict and re-fault @p pages file pages.
     * Runs implicitly on every VM spawn -- real hosts keep serving I/O
     * between guest lifetimes, so no two spawns see identical free
     * lists (attack attempts are not deterministic replays).
     */
    void pageCacheChurn(uint64_t pages);

    /** @name Crash-safe snapshots */
    /// @{

    /**
     * FNV fingerprint over every SystemConfig field that shapes
     * serialized state. Snapshots embed it; loadSnapshot() refuses a
     * file taken under a different configuration (state would be
     * meaningless against mismatched geometry or fault plans).
     */
    uint64_t configFingerprint() const;

    /**
     * Serialize the full host: virtual clock, fault-injector cursors,
     * DRAM contents and counters, buddy free lists, the host RNG, the
     * VM id counter and the resident noise-page sets. VMs are owned by
     * callers and serialize separately (vm::VirtualMachine::saveState).
     */
    void saveState(base::ArchiveWriter &w) const;

    /**
     * Restore state written by saveState() over this booted host. The
     * nested subsystems commit as they load, so on failure the host is
     * partially modified and must be discarded -- corrupt payloads are
     * normally stopped earlier by the file checksum.
     */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

    /** Atomically write a host snapshot (temp + fsync + rename). */
    [[nodiscard]] base::Status saveSnapshot(const std::string &path) const;

    /**
     * Load a snapshot written by saveSnapshot(). Wrong magic, stale
     * format version, checksum mismatch, truncation and configuration
     * fingerprint mismatch each produce a descriptive Status; on any
     * failure discard this host and rebuild.
     */
    [[nodiscard]] base::Status loadSnapshot(const std::string &path);

    /**
     * Build a restore-mode VM shell attached to this host: no boot
     * allocations, no clock charge, no churn. Follow with the VM's
     * loadState(); @p vm_id must match the id stored in the snapshot.
     */
    std::unique_ptr<vm::VirtualMachine>
    restoreVm(const vm::VmConfig &vm_cfg, uint16_t vm_id);
    /// @}

  private:
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    SystemConfig cfg;
    base::SimClock simClock;
    std::unique_ptr<fault::FaultInjector> injector;
    std::unique_ptr<dram::DramSystem> dramSys;
    std::unique_ptr<mm::BuddyAllocator> allocator;
    base::Rng rng;
    uint16_t nextVmId = 1;
    // hh-lint: allow(snapshot-field-coverage) -- fork-lineage flag; a restored host is never a trial template
    bool pristineTemplate = false;

    /** Resident kernel/service pages; churn cycles through these. */
    std::vector<Pfn> residentKernelPages;
    std::vector<Pfn> pageCachePages;

    void bootHost();
};

} // namespace hh::sys

#endif // HYPERHAMMER_SYS_HOST_SYSTEM_H
