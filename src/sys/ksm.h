/**
 * @file
 * Kernel Samepage Merging (KSM) model -- the memory-deduplication
 * feature the Flip Feng Shui attack abused (Razavi et al., USENIX
 * Security'16; Section 2.1 of the paper) and which commodity
 * hypervisors have therefore disabled. It exists here as the
 * *baseline* HyperHammer is compared against: the classic
 * hypervisor-level Rowhammer massaging primitive that no longer works.
 *
 * The model implements the real mechanism: a scanner hashes guest
 * pages across registered VMs, merges identical ones onto a single
 * write-protected host frame, and breaks copy-on-write on guest
 * writes (through the VM-exit write-fault path). Merged frames are
 * exactly as Rowhammer-corruptible as any other -- which is the whole
 * problem.
 *
 * Destruction order: tear down the registered VMs before the Ksm
 * instance; Ksm then reclaims the shared and COW-replacement frames
 * the VMs' block-wise teardown intentionally skipped.
 */

#ifndef HYPERHAMMER_SYS_KSM_H
#define HYPERHAMMER_SYS_KSM_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/archive.h"
#include "base/status.h"
#include "base/types.h"
#include "dram/dram_system.h"
#include "mm/buddy_allocator.h"
#include "vm/virtual_machine.h"

namespace hh::sys {

/** KSM statistics (mirrors /sys/kernel/mm/ksm). */
struct KsmStats
{
    uint64_t pagesScanned = 0;
    uint64_t pagesMerged = 0;
    uint64_t cowBreaks = 0;
    /** Frames currently shared by >= 2 mappings. */
    uint64_t sharedFrames = 0;
    /** Pages skipped because a guest write raced the scanner. */
    uint64_t raced = 0;
};

/**
 * The deduplication engine. Disabled by default, as on every
 * contemporary cloud (the paper's motivation for Page Steering).
 */
class Ksm
{
  public:
    Ksm(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
        bool enabled, fault::FaultInjector *fault_injector = nullptr);
    ~Ksm();

    Ksm(const Ksm &) = delete;
    Ksm &operator=(const Ksm &) = delete;

    bool enabled() const { return on; }

    /**
     * Register a VM: installs the COW write-fault handler so guest
     * stores to merged pages trigger unsharing.
     */
    void attach(vm::VirtualMachine &machine);

    /**
     * One scanner pass over @p pages 4 KB pages starting at @p start
     * in @p machine. Hugepage-backed ranges are split first (as the
     * real KSM splits THP). Identical pages -- across all previously
     * scanned content -- are merged. Returns pages merged this pass.
     */
    uint64_t scanRange(vm::VirtualMachine &machine, GuestPhysAddr start,
                       uint64_t pages);

    const KsmStats &stats() const { return ksmStats; }

    /** True when the frame behind (machine, gpa) is currently shared. */
    bool isShared(vm::VirtualMachine &machine, GuestPhysAddr gpa) const;

    /** Serialize merge state: stable tree, reverse map, COW frames. */
    void saveState(base::ArchiveWriter &w) const;

    /**
     * Restore state written by saveState(). Registered VMs must be
     * re-attach()ed by the caller (fault handlers are not serialized).
     */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    struct StableNode
    {
        Pfn frame;
        /** Mappings currently pointing at the frame. */
        uint32_t refs;
    };

    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    // hh-lint: allow(snapshot-field-coverage) -- enable switch is host configuration, fixed at construction
    bool on;
    fault::FaultInjector *faultInjector;
    KsmStats ksmStats;

    /** Content hash -> stable node. */
    std::unordered_map<uint64_t, StableNode> stableTree;
    /** Shared frame -> hash (reverse lookup for COW breaking). */
    std::unordered_map<Pfn, uint64_t> frameToHash;
    /** COW replacement frames to reclaim at destruction. */
    std::vector<Pfn> cowFrames;

    uint64_t hashPage(Pfn frame) const;
    bool samePageContent(Pfn a, Pfn b) const;

    /** The write-fault (VM exit) path: unshare (machine, gpa). */
    [[nodiscard]] base::Status breakCow(vm::VirtualMachine &machine,
                          GuestPhysAddr gpa);
};

} // namespace hh::sys

#endif // HYPERHAMMER_SYS_KSM_H
