#include "ksm.h"

#include "base/container_util.h"
#include "base/log.h"
#include "base/rng.h"

namespace hh::sys {

Ksm::Ksm(dram::DramSystem &dram, mm::BuddyAllocator &buddy, bool enabled,
         fault::FaultInjector *fault_injector)
    : dram(dram), buddy(buddy), on(enabled), faultInjector(fault_injector)
{}

Ksm::~Ksm()
{
    // Reclaim frames whose owning VMs are gone (VMs must be torn
    // down first, see the class comment). A COW replacement can land
    // inside a VM's own backing block -- the allocator recycles freed
    // guest frames -- in which case the VM's teardown already freed
    // it; only reclaim frames still carrying their guest tags.
    const auto reclaim = [this](Pfn frame) {
        const mm::PageFrame &meta = buddy.frame(frame);
        if (meta.free || meta.use != mm::PageUse::GuestMemory)
            return;
        dram.backend().clearPage(frame);
        buddy.freePages(frame, 0);
    };
    // Hash-map order is implementation-defined; reclaim in frame order
    // so the allocator's free lists end up in a reproducible state.
    for (Pfn frame : base::sortedKeys(frameToHash))
        reclaim(frame);
    for (Pfn frame : cowFrames)
        reclaim(frame);
}

void
Ksm::attach(vm::VirtualMachine &machine)
{
    if (!on)
        return;
    machine.setWriteFaultHandler(
        [this](vm::VirtualMachine &vm_ref, GuestPhysAddr gpa) {
            return breakCow(vm_ref, gpa);
        });
}

uint64_t
Ksm::hashPage(Pfn frame) const
{
    // FNV-ish fold over the 512 words; zero pages hash too (KSM's
    // favourite merge candidate).
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned word = 0; word < kPageSize / 8; ++word) {
        const uint64_t value = dram.backend().read64(
            HostPhysAddr(frame * kPageSize + word * 8ull));
        hash = base::mix64(hash, value + word);
    }
    return hash;
}

bool
Ksm::samePageContent(Pfn a, Pfn b) const
{
    for (unsigned word = 0; word < kPageSize / 8; ++word) {
        const uint64_t va = dram.backend().read64(
            HostPhysAddr(a * kPageSize + word * 8ull));
        const uint64_t vb = dram.backend().read64(
            HostPhysAddr(b * kPageSize + word * 8ull));
        if (va != vb)
            return false;
    }
    return true;
}

uint64_t
Ksm::scanRange(vm::VirtualMachine &machine, GuestPhysAddr start,
               uint64_t pages)
{
    if (!on)
        return 0;
    uint64_t merged = 0;
    for (uint64_t i = 0; i < pages; ++i) {
        const GuestPhysAddr gpa = start.pageBase() + i * kPageSize;

        // KSM needs 4 KB granularity: split THP-backed ranges first.
        auto leaf = machine.mmu().leafEntry(gpa);
        if (!leaf)
            continue;
        if (leaf->largePage()) {
            if (!machine.mmu().splitHugePage(gpa.hugePageBase()).ok())
                continue;
            leaf = machine.mmu().leafEntry(gpa);
            if (!leaf)
                continue;
        }
        const Pfn frame = leaf->frame();
        if (frame >= dram.pageCount())
            continue;
        // DMA-pinned pages are never merged (KSM and VFIO exclude
        // each other on real systems too).
        if (buddy.frame(frame).pinned)
            continue;
        // Scan race: a guest write dirties the page mid-scan, so the
        // scanner skips it this pass (real KSM rechecks the checksum).
        if (const fault::FaultEntry *f = HH_FAULT_POINT(
                faultInjector, fault::FaultSite::KsmScan)) {
            if (f->kind == fault::FaultKind::ScanRace) {
                ++ksmStats.raced;
                continue;
            }
        }
        ++ksmStats.pagesScanned;

        if (frameToHash.count(frame))
            continue; // already a stable (merged) frame

        const uint64_t hash = hashPage(frame);
        auto node = stableTree.find(hash);
        if (node == stableTree.end()) {
            // First sighting: make it a stable-tree candidate backed
            // by its current frame, write-protected so later guest
            // writes unshare it. Detach the frame from the VM's
            // accounting (it now belongs to KSM).
            if (!machine.mmu().setLeafWritable(gpa, false).ok())
                continue;
            buddy.setUse(frame, mm::PageUse::GuestMemory, 0);
            stableTree[hash] = {frame, 1};
            frameToHash[frame] = hash;
            continue;
        }
        // Hash match: verify content, then merge.
        if (!samePageContent(frame, node->second.frame)) {
            continue; // hash collision; real KSM walks a tree instead
        }
        if (!machine.mmu()
                 .remapLeaf4k(gpa, node->second.frame,
                              /*writable=*/false)
                 .ok()) {
            continue;
        }
        ++node->second.refs;
        ++ksmStats.pagesMerged;
        ++merged;
        if (node->second.refs == 2)
            ++ksmStats.sharedFrames;
        // The duplicate's old frame goes back to the host -- this is
        // the memory KSM exists to save.
        dram.backend().clearPage(frame);
        buddy.setUse(frame, mm::PageUse::GuestMemory, 0);
        buddy.freePages(frame, 0);
    }
    return merged;
}

bool
Ksm::isShared(vm::VirtualMachine &machine, GuestPhysAddr gpa) const
{
    auto leaf = machine.mmu().leafEntry(gpa);
    if (!leaf || leaf->largePage())
        return false;
    const auto it = frameToHash.find(leaf->frame());
    if (it == frameToHash.end())
        return false;
    const auto node = stableTree.find(it->second);
    return node != stableTree.end() && node->second.refs >= 2;
}

base::Status
Ksm::breakCow(vm::VirtualMachine &machine, GuestPhysAddr gpa)
{
    auto leaf = machine.mmu().leafEntry(gpa);
    if (!leaf)
        return base::Status(leaf.error());
    const Pfn shared = leaf->frame();
    const auto hash_it = frameToHash.find(shared);
    if (hash_it == frameToHash.end()) {
        // Not a KSM page: some other write-protection we don't own.
        return base::ErrorCode::Denied;
    }

    // Unshare: fresh frame, copy, remap writable.
    auto fresh = buddy.allocPages(0, mm::MigrateType::Movable,
                                  mm::PageUse::GuestMemory,
                                  machine.id());
    if (!fresh)
        return fresh.error();
    for (unsigned word = 0; word < kPageSize / 8; ++word) {
        const uint64_t value = dram.read64(
            HostPhysAddr(shared * kPageSize + word * 8ull));
        dram.write64(HostPhysAddr(*fresh * kPageSize + word * 8ull),
                     value);
    }
    const base::Status remapped = machine.mmu().remapLeaf4k(
        gpa.pageBase(), *fresh, /*writable=*/true);
    if (!remapped.ok()) {
        buddy.freePages(*fresh, 0);
        return remapped;
    }
    cowFrames.push_back(*fresh);
    ++ksmStats.cowBreaks;

    auto node = stableTree.find(hash_it->second);
    HH_ASSERT(node != stableTree.end());
    HH_ASSERT(node->second.refs > 0);
    --node->second.refs;
    if (node->second.refs == 1)
        --ksmStats.sharedFrames;
    if (node->second.refs == 0) {
        // Last mapping gone: the stable frame returns to the host.
        dram.backend().clearPage(shared);
        buddy.freePages(shared, 0);
        stableTree.erase(node);
        frameToHash.erase(hash_it);
    }
    return base::Status::success();
}

void
Ksm::saveState(base::ArchiveWriter &w) const
{
    w.u64(ksmStats.pagesScanned);
    w.u64(ksmStats.pagesMerged);
    w.u64(ksmStats.cowBreaks);
    w.u64(ksmStats.sharedFrames);
    w.u64(ksmStats.raced);
    w.u64(stableTree.size());
    for (const auto &[hash, node] : base::sortedItems(stableTree)) {
        w.u64(hash);
        w.u64(node.frame);
        w.u32(node.refs);
    }
    w.u64(frameToHash.size());
    for (const auto &[frame, hash] : base::sortedItems(frameToHash)) {
        w.u64(frame);
        w.u64(hash);
    }
    w.u64vec(cowFrames);
}

base::Status
Ksm::loadState(base::ArchiveReader &r)
{
    KsmStats stats;
    stats.pagesScanned = r.u64();
    stats.pagesMerged = r.u64();
    stats.cowBreaks = r.u64();
    stats.sharedFrames = r.u64();
    stats.raced = r.u64();
    const uint64_t tree_size = r.count(20);
    std::unordered_map<uint64_t, StableNode> tree;
    tree.reserve(tree_size);
    for (uint64_t i = 0; i < tree_size && r.ok(); ++i) {
        const uint64_t hash = r.u64();
        StableNode node;
        node.frame = r.u64();
        node.refs = r.u32();
        if (node.frame >= buddy.totalPages()) {
            r.fail();
            break;
        }
        tree[hash] = node;
    }
    const uint64_t reverse_size = r.count(16);
    std::unordered_map<Pfn, uint64_t> reverse;
    reverse.reserve(reverse_size);
    for (uint64_t i = 0; i < reverse_size && r.ok(); ++i) {
        const Pfn frame = r.u64();
        reverse[frame] = r.u64();
    }
    std::vector<Pfn> cow = r.u64vec();
    if (!r.ok())
        return r.status();
    ksmStats = stats;
    stableTree = std::move(tree);
    frameToHash = std::move(reverse);
    cowFrames = std::move(cow);
    return base::Status::success();
}

} // namespace hh::sys
