/**
 * @file
 * Experiment E1 -- Table 1: memory profiling results.
 *
 * Profiles the attacker VM's memory on S1 and S2 exactly as Section
 * 5.1 describes (single-sided pairs at hugepage borders, all banks,
 * both fill patterns, stability re-tests, exploitability filter) and
 * prints the Table 1 columns next to the paper's numbers.
 *
 * Default scale: the paper's full 16 GB host with a 13 GB VM (12 GB
 * profiled). --quick runs at 2 GiB. Reported times are virtual.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct PaperRow
{
    const char *time;
    unsigned total, one_to_zero, zero_to_one, stable, expl;
};

void
runSystem(const std::string &name, const Options &opts,
          analysis::TextTable &table, const PaperRow &paper)
{
    Options local = opts;
    if (opts.hostBytes == 0 && opts.quick)
        local.hostBytes = 2_GiB;
    sys::SystemConfig cfg = presetByName(name, local);

    sys::HostSystem host(cfg);
    auto machine = host.createVm(paperVmConfig(cfg));

    attack::MemoryProfiler profiler(*machine, host.clock(),
                                    host.dram().mapping(),
                                    attack::ProfilerConfig{});
    const attack::ProfileResult result =
        profiler.profile(profilableRegion(*machine));

    table.addRow({
        cfg.name,
        base::SimClock::format(result.elapsed),
        analysis::formatCount(result.totalFlips()),
        analysis::formatCount(result.countOneToZero()),
        analysis::formatCount(result.countZeroToOne()),
        analysis::formatCount(result.countStable()),
        analysis::formatCount(result.countExploitable()),
    });
    table.addRow({
        cfg.name + " (paper)",
        paper.time,
        analysis::formatCount(paper.total),
        analysis::formatCount(paper.one_to_zero),
        analysis::formatCount(paper.zero_to_one),
        analysis::formatCount(paper.stable),
        analysis::formatCount(paper.expl),
    });
    std::printf("  %s: %llu combinations hammered, %llu collateral "
                "flips outside the VM\n",
                cfg.name.c_str(),
                static_cast<unsigned long long>(result.combinations),
                static_cast<unsigned long long>(
                    result.collateralFlips));
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E1 / Table 1: memory profiling "
                "(virtual times; paper rows inline) ==\n");

    analysis::TextTable table(
        {"System", "Time", "Total", "1->0", "0->1", "Stable", "Expl."});
    if (opts.wants("s1"))
        runSystem("s1", opts, table, {"72 h", 395, 213, 182, 246, 96});
    if (opts.wants("s2"))
        runSystem("s2", opts, table, {"48 h", 650, 329, 321, 40, 90});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
