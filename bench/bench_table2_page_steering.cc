/**
 * @file
 * Experiment E3 -- Table 2: pages released from the VM vs. pages
 * reused by EPTs.
 *
 * For each (S, B) cell of the paper's grid -- spray size S in {5, 10}
 * GB and released sub-blocks B in {20, 30, 70, 100} -- the bench
 * spawns the 13 GB attacker VM, exhausts noise pages, releases B
 * sub-blocks, sprays S bytes of hugepages, and then uses the paper's
 * two host-side hooks (the released-PFN log and an EPT-page dump) to
 * compute N, E, R, R_N and R_E.
 *
 * Runs at full 16 GB scale by default; S and B scale with --host-gib.
 */

#include <unordered_set>

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct Cell
{
    uint64_t sprayBytes;
    unsigned blocks;
};

struct PaperCell
{
    double rn, re;
};

void
runSystem(const std::string &name, const Options &opts)
{
    sys::SystemConfig cfg = presetByName(name, opts);
    if (opts.hostBytes == 0 && opts.quick)
        cfg.withMemory(4_GiB);
    const double scale =
        static_cast<double>(cfg.dram.totalBytes) / (16_GiB);

    const std::vector<Cell> cells = {
        {static_cast<uint64_t>(5_GiB * scale), 100},
        {static_cast<uint64_t>(10_GiB * scale), 100},
        {static_cast<uint64_t>(10_GiB * scale), 70},
        {static_cast<uint64_t>(10_GiB * scale), 30},
        {static_cast<uint64_t>(10_GiB * scale), 20},
    };
    static const PaperCell kPaperS1[] = {{0.014, 0.229},
                                         {0.101, 0.913},
                                         {0.136, 0.859},
                                         {0.217, 0.586},
                                         {0.224, 0.407}};
    static const PaperCell kPaperS2[] = {{0.038, 0.767},
                                         {0.082, 0.860},
                                         {0.122, 0.897},
                                         {0.253, 0.799},
                                         {0.239, 0.510}};
    static const PaperCell kPaperS3[] = {{0.022, 0.391},
                                         {0.076, 0.779},
                                         {0.103, 0.725},
                                         {0.174, 0.526},
                                         {0.194, 0.388}};
    const PaperCell *paper = name == "s2" ? kPaperS2
        : name == "s3" ? kPaperS3 : kPaperS1;

    analysis::TextTable table({"Setting", "S", "B", "N", "E", "R",
                               "R_N", "R_E", "R_N paper", "R_E paper"});

    // All five cells run on identically configured hosts: build the
    // world once and fork it per cell instead of re-constructing it
    // (forkTrial with the template's own seed reproduces a fresh
    // HostSystem bit for bit; the E3 golden trace gates this).
    const std::unique_ptr<const sys::HostSystem> template_world =
        sys::HostSystem::makeForkTemplate(cfg);

    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        const unsigned blocks = opts.quick
            ? std::max(1u, cell.blocks / 4) : cell.blocks;

        const std::unique_ptr<sys::HostSystem> forked =
            sys::HostSystem::forkTrial(*template_world, cfg);
        sys::HostSystem &host = *forked;
        auto machine = host.createVm(paperVmConfig(cfg));
        const uint16_t vm_id = machine->id();

        // Step 1: exhaust noise pages.
        attack::SteeringConfig steer_cfg;
        steer_cfg.exhaustMappings = scaledMappings(cfg);
        attack::PageSteering steering(*machine, host.clock(),
                                      steer_cfg);
        steering.exhaustNoisePages();
        if (cfg.noise.churnPagesPerTick) {
            for (int tick = 0; tick < 20; ++tick)
                host.noiseTick();
        }

        // Step 2: release B sub-blocks (spread over the region; the
        // paper releases the blocks holding vulnerable bits, whose
        // host placement is effectively arbitrary).
        machine->memDriver().setSuppressAutoPlug(true);
        auto &device = machine->memDevice_();
        unsigned released = 0;
        for (virtio::SubBlockId sb = 0;
             sb < device.subBlockCount() && released < blocks;
             sb += 7) {
            if (device.isPlugged(sb)
                && device.requestUnplug(sb).ok()) {
                ++released;
            }
        }

        // Step 3: spray S bytes of EPT pages.
        steering.sprayEptes(cell.sprayBytes, {});

        // Host-side hooks: the released-PFN log and the EPT dump.
        std::unordered_set<uint64_t> released_pages;
        for (Pfn block : device.stats().releasedBlockPfns) {
            for (uint64_t page = 0; page < kPagesPerHugePage; ++page)
                released_pages.insert(block + page);
        }
        const uint64_t n = released_pages.size();
        uint64_t e = 0;
        uint64_t r = 0;
        for (Pfn pfn : machine->mmu().eptPageFrames()) {
            ++e;
            r += released_pages.count(pfn);
        }

        table.addRow({
            cfg.name,
            std::to_string(cell.sprayBytes / 1_GiB) + " GB",
            std::to_string(released),
            analysis::formatCount(n),
            analysis::formatCount(e),
            analysis::formatCount(r),
            analysis::formatPercent(static_cast<double>(r) / n),
            analysis::formatPercent(static_cast<double>(r) / e),
            analysis::formatPercent(paper[i].rn),
            analysis::formatPercent(paper[i].re),
        });
        (void)vm_id;
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E3 / Table 2: released pages reused by EPTs ==\n");
    for (const char *name : {"s1", "s2", "s3"}) {
        if (opts.wants(name))
            runSystem(name, opts);
    }
    std::printf("Paper shape: R_E grows with S at fixed B; R_N grows "
                "as B shrinks at fixed S.\n");
    return 0;
}
