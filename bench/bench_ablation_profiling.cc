/**
 * @file
 * Experiment E10 -- Section 4.1 ablation: THP-guided profiling vs.
 * the brute-force fallback.
 *
 * With the bank function known (recovered offline with DRAMDig), the
 * profiler hammers one same-bank pair per bank and border: 2 x 32
 * combinations per hugepage. Without it, it must try page pairs
 * across the two border rows (64 x 64 per border), a slowdown "by a
 * factor that depends on the row size". The bench profiles the same
 * region both ways and reports virtual time per discovered bit.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

void
runMode(bool known, const Options &opts, analysis::TextTable &table)
{
    sys::SystemConfig cfg = presetByName("s1", opts);
    if (opts.hostBytes == 0)
        cfg.withMemory(1_GiB);
    cfg.dram.fault.weakCellsPerRow *= 8.0; // dense: short run
    sys::HostSystem host(cfg);
    auto machine = host.createVm(paperVmConfig(cfg));

    attack::ProfilerConfig pcfg;
    pcfg.bankFunctionKnown = known;
    pcfg.stopAfterExploitable = 3;
    attack::MemoryProfiler profiler(*machine, host.clock(),
                                    host.dram().mapping(), pcfg);
    const attack::ProfileResult result =
        profiler.profile(profilableRegion(*machine));

    const base::SimTime per_bit = result.totalFlips()
        ? result.elapsed / result.totalFlips() : 0;
    table.addRow({
        known ? "THP-guided (bank function known)"
              : "brute force (page pairs)",
        analysis::formatCount(result.combinations),
        analysis::formatCount(result.totalFlips()),
        base::SimClock::format(result.elapsed),
        per_bit ? base::SimClock::format(per_bit) : "-",
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E10 / Section 4.1: profiling with and without "
                "the bank function ==\n");
    analysis::TextTable table({"Mode", "Combinations", "Flips found",
                               "Virtual time", "Time per bit"});
    runMode(true, opts, table);
    runMode(false, opts, table);
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper shape: brute force stays viable but is "
                "slower by roughly (pages per row)^2 / banks = "
                "64*64/32 = 128x per combination budget.\n");
    return 0;
}
