/**
 * @file
 * Baseline: Flip Feng Shui (Razavi et al., USENIX Security'16) -- the
 * prior hypervisor-level Rowhammer massaging primitive the paper
 * positions itself against (Section 2.1).
 *
 * FFS needs memory deduplication: the attacker profiles *its own*
 * memory for a vulnerable page, writes a byte-exact copy of the
 * victim's sensitive page into that vulnerable location, waits for
 * KSM to merge the two onto the attacker-chosen (vulnerable) frame,
 * and hammers. The victim's data changes although nobody ever wrote
 * it.
 *
 * The bench runs the full chain twice: with dedup enabled (the 2016
 * world -- the attack works, end to end with real profiling and real
 * hammering) and disabled (every contemporary cloud -- nothing to
 * attack). This is exactly why HyperHammer needed a massaging
 * primitive that does not depend on dedup.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct FfsOutcome
{
    bool merged = false;
    bool corrupted = false;
    uint64_t flips = 0;
    base::SimTime elapsed = 0;
};

FfsOutcome
runFfs(bool dedup_enabled, const Options &opts)
{
    FfsOutcome outcome;
    sys::SystemConfig cfg = presetByName("s1", opts);
    if (opts.hostBytes == 0)
        cfg.withMemory(2_GiB);
    cfg.dram.fault.weakCellsPerRow *= 6.0; // short profiling run
    sys::HostSystem host(cfg);
    const base::SimTime start = host.clock().now();

    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = cfg.dram.totalBytes / 16;
    vm_cfg.virtioMemRegionSize = cfg.dram.totalBytes;
    vm_cfg.virtioMemPlugged = cfg.dram.totalBytes / 4;
    vm_cfg.passthroughDevices = 0; // FFS predates VFIO pinning
    auto attacker = host.createVm(vm_cfg);
    auto victim = host.createVm(vm_cfg);

    sys::Ksm ksm(host.dram(), host.buddy(), dedup_enabled);
    ksm.attach(*attacker);
    ksm.attach(*victim);

    // The victim's sensitive page: a (mock) authorized_keys blob.
    const GuestPhysAddr victim_key = vm::kVirtioMemRegionStart
        + 17 * kPageSize;
    for (unsigned word = 0; word < kPageSize / 8; ++word)
        (void)victim->write64(victim_key + word * 8ull,
                              0x7373682d72736120ull + word);

    // 1. Profile the attacker's own memory (stable bits only --
    //    FFS needs a reliable flip at a known in-page offset).
    attack::ProfilerConfig pcfg;
    pcfg.stopAfterExploitable = 0;
    attack::MemoryProfiler profiler(*attacker, host.clock(),
                                    host.dram().mapping(), pcfg);
    const attack::ProfileResult profile =
        profiler.profile(profilableRegion(*attacker));
    // FFS picks a bit whose flip direction matches the polarity the
    // victim's content stores at that position (the attacker knows
    // the public content it duplicates).
    const auto key_word_at = [](uint64_t page_offset) {
        return 0x7373682d72736120ull + page_offset / 8;
    };
    const attack::VulnerableBit *target = nullptr;
    for (const attack::VulnerableBit &bit : profile.bits) {
        if (!bit.stable || !bit.releasable)
            continue;
        const uint64_t stored =
            key_word_at(bit.wordGpa.value() % kPageSize);
        const bool bit_is_one =
            (stored >> bit.bitInWord) & 1;
        const bool fires = bit.direction
                == dram::FlipDirection::OneToZero
            ? bit_is_one : !bit_is_one;
        if (fires) {
            target = &bit;
            break;
        }
    }
    if (!target) {
        outcome.elapsed = host.clock().now() - start;
        return outcome;
    }

    // 2. Write a byte-exact copy of the victim page into the
    //    vulnerable page (the merge must land on *our* frame, which
    //    KSM guarantees by keeping the first-scanned copy).
    const GuestPhysAddr vuln_page = target->wordGpa.pageBase();
    for (unsigned word = 0; word < kPageSize / 8; ++word) {
        auto value = victim->read64(victim_key + word * 8ull);
        (void)attacker->write64(vuln_page + word * 8ull, *value);
    }

    // 3. Wait for the dedup scanner: attacker's copy first (becomes
    //    the stable frame), then the victim's page merges onto it.
    (void)ksm.scanRange(*attacker, vuln_page, 1);
    (void)ksm.scanRange(*victim, victim_key, 1);
    outcome.merged = ksm.isShared(*victim, victim_key);

    // 4. Hammer the profiled aggressors; the flip lands in the now
    //    shared frame.
    const uint64_t before =
        victim->read64(victim_key
                       + (target->wordGpa.value() % kPageSize))
            .valueOr(0);
    (void)attacker->hammer(target->aggressors, 250'000);
    const uint64_t after =
        victim->read64(victim_key
                       + (target->wordGpa.value() % kPageSize))
            .valueOr(0);
    outcome.flips = before == after ? 0 : 1;
    outcome.corrupted = outcome.merged && before != after;
    outcome.elapsed = host.clock().now() - start;

    attacker.reset();
    victim.reset();
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== Baseline / Section 2.1: Flip Feng Shui vs. "
                "memory deduplication ==\n");
    analysis::TextTable table({"Dedup (KSM)", "Victim page merged",
                               "Victim data corrupted",
                               "Virtual time"});
    for (const bool dedup : {true, false}) {
        const FfsOutcome outcome = runFfs(dedup, opts);
        table.addRow({
            dedup ? "enabled (2016)" : "disabled (today)",
            outcome.merged ? "yes" : "no",
            outcome.corrupted ? "YES -- attack works" : "no",
            base::SimClock::format(outcome.elapsed),
        });
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nWith dedup off -- the default everywhere since "
                "Razavi et al. -- Flip Feng Shui has no massaging "
                "primitive left; HyperHammer's Page Steering exists "
                "to fill exactly that gap.\n");
    return 0;
}
