/**
 * @file
 * Experiment E2 -- Figure 3: the number of noise pages while the
 * attacker creates 2 MB-spaced IOVA mappings.
 *
 * Reproduces both subfigures: (a) S1 and S2 drop below the 1,024-page
 * threshold quickly; (b) the OpenStack host S3 starts far higher and
 * takes much longer, with background churn keeping it bouncing.
 * Prints an ASCII rendering of the figure plus summary milestones.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct Milestones
{
    uint64_t start = 0;
    uint64_t mappingsTo1024 = 0;
    uint64_t mappingsTo512 = 0;
    uint64_t final = 0;
};

base::Series
traceSystem(const std::string &name, const Options &opts,
            Milestones &milestones)
{
    sys::SystemConfig cfg = presetByName(name, opts);
    if (opts.hostBytes == 0 && opts.quick)
        cfg.withMemory(2_GiB);
    sys::HostSystem host(cfg);
    auto machine = host.createVm(paperVmConfig(cfg));

    attack::SteeringConfig steer_cfg;
    steer_cfg.exhaustMappings = scaledMappings(cfg);
    attack::PageSteering steering(*machine, host.clock(), steer_cfg);

    base::Series series(cfg.name);
    milestones.start = host.noisePages();
    series.add(0.0, static_cast<double>(milestones.start));

    // The paper inserts a delay every 1,000 mappings while sampling
    // /proc/pagetypeinfo; S3's host services keep churning meanwhile.
    const uint32_t sample_every = steer_cfg.exhaustMappings / 60 + 1;
    steering.exhaustNoisePages(
        [&](uint64_t created) {
            if (cfg.noise.churnPagesPerTick)
                host.noiseTick();
            const uint64_t noise = host.noisePages();
            series.add(static_cast<double>(created),
                       static_cast<double>(noise));
            if (noise <= 1'024 && milestones.mappingsTo1024 == 0)
                milestones.mappingsTo1024 = created;
            if (noise <= 512 && milestones.mappingsTo512 == 0)
                milestones.mappingsTo512 = created;
        },
        sample_every);
    milestones.final = host.noisePages();
    return series;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E2 / Figure 3: noise pages vs. IOVA mappings ==\n");

    std::vector<base::Series> fig_a;
    analysis::TextTable table({"System", "Start", "To <=1,024 (maps)",
                               "To <=512 (maps)", "Final"});
    for (const char *name : {"s1", "s2", "s3"}) {
        if (!opts.wants(name))
            continue;
        Milestones m;
        base::Series series = traceSystem(name, opts, m);
        table.addRow({
            series.name(),
            analysis::formatCount(m.start),
            m.mappingsTo1024 ? analysis::formatCount(m.mappingsTo1024)
                             : "never",
            m.mappingsTo512 ? analysis::formatCount(m.mappingsTo512)
                            : "never",
            analysis::formatCount(m.final),
        });
        if (series.name() != "S3")
            fig_a.push_back(std::move(series));
        else {
            std::printf("\nFigure 3(b): S3 (OpenStack host)\n%s\n",
                        analysis::renderSeries({series}, 72, 14,
                                               {512.0, 1024.0})
                            .c_str());
        }
    }
    if (!fig_a.empty()) {
        std::printf("\nFigure 3(a): S1 and S2\n%s\n",
                    analysis::renderSeries(fig_a, 72, 14,
                                           {512.0, 1024.0})
                        .c_str());
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper shape: S1/S2 drop below the 1,024 line "
                "rapidly and fluctuate between 0 and the threshold; "
                "S3 starts with many more noise pages and the "
                "decrease takes much longer.\n");
    return 0;
}
