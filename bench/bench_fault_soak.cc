/**
 * @file
 * Nightly fault-soak driver: end-to-end attacks under randomized
 * FaultPlans.
 *
 * Each trial installs FaultPlan::randomized(seed_base + trial,
 * intensity) on a small S1 host, profiles, runs the attempt loop, and
 * prints one line with the trial's status, retry/degradation counters
 * and the number of faults the injector fired. Every line is fully
 * reproducible from its plan seed, so a failing nightly run can be
 * replayed locally with --seed-base=<seed> --trials=1.
 *
 * The exit code is non-zero only when a trial violates the degradation
 * contract (aborts instead of returning a partial-result Status); a
 * degraded or failed attack is an expected soak outcome, not an error.
 */

#include "bench_common.h"
#include "bench_json.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct SoakOptions
{
    unsigned trials = 8;
    uint64_t seedBase = 1;
    /** Scales every entry's firing probability, (0, 1]. */
    double intensity = 1.0;
    /** Checkpoint each campaign every N attempts (0 = off). */
    uint64_t checkpointEvery = 0;
    /** Base path; campaign files get a "_s<plan seed>" suffix. */
    std::string checkpointPath = "fault_soak.ckpt";
    /** Restore valid checkpoints instead of starting from scratch. */
    bool resume = false;
    /** Simulated crash: stop each campaign after N attempts. */
    uint64_t killAt = 0;
    /**
     * Telemetry report (BENCH_soak.json shape) for the nightly trend
     * pipeline; empty = off. Status messages go to stderr because the
     * nightly kill/resume leg byte-diffs this binary's stdout.
     */
    std::string jsonOut;

    static SoakOptions
    parse(int argc, char **argv)
    {
        SoakOptions soak;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                return arg.compare(0, len, prefix) == 0
                    ? arg.c_str() + len : nullptr;
            };
            if (const char *v = value("--trials="))
                soak.trials = static_cast<unsigned>(
                    std::strtoul(v, nullptr, 0));
            else if (const char *v2 = value("--seed-base="))
                soak.seedBase = std::strtoull(v2, nullptr, 0);
            else if (const char *v3 = value("--intensity="))
                soak.intensity = std::strtod(v3, nullptr);
            else if (const char *v4 = value("--checkpoint-every="))
                soak.checkpointEvery = std::strtoull(v4, nullptr, 0);
            else if (const char *v5 = value("--checkpoint-path="))
                soak.checkpointPath = v5;
            else if (const char *v6 = value("--kill-at="))
                soak.killAt = std::strtoull(v6, nullptr, 0);
            else if (arg == "--resume")
                soak.resume = true;
            else if (const char *v7 = value("--resume="))
                soak.resume = true, soak.checkpointPath = v7;
            else if (const char *v8 = value("--json-out="))
                soak.jsonOut = v8;
        }
        return soak;
    }
};

sys::SystemConfig
soakHostConfig(const Options &opts)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(opts.seed).withMemory(
        opts.hostBytes ? opts.hostBytes : 1_GiB);
    // Densify weak cells so attempts have material to work with at
    // this scale (same factor the orchestrator tests use).
    cfg.dram.fault.weakCellsPerRow *= 4.0;
    return cfg;
}

vm::VmConfig
soakVmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    const SoakOptions soak = SoakOptions::parse(argc, argv);

    std::printf("== fault soak: %u trials, plan seeds [%llu, %llu], "
                "intensity %.2f ==\n",
                soak.trials,
                static_cast<unsigned long long>(soak.seedBase),
                static_cast<unsigned long long>(
                    soak.seedBase + soak.trials - 1),
                soak.intensity);

    // Constructed before the trials so env_wall_seconds covers the
    // whole soak, not just the report assembly.
    JsonReport report("bench_fault_soak");
    analysis::TextTable table({"Plan seed", "Status", "Degraded",
                               "Attempts", "Retries", "Reprofiles",
                               "Faults fired"});
    unsigned successes = 0;
    unsigned degraded = 0;
    uint64_t faults_total = 0;
    for (unsigned trial = 0; trial < soak.trials; ++trial) {
        const uint64_t plan_seed = soak.seedBase + trial;
        sys::SystemConfig cfg = soakHostConfig(opts).withFaults(
            fault::FaultPlan::randomized(plan_seed, soak.intensity));
        sys::HostSystem host(cfg);

        attack::AttackConfig acfg;
        acfg.maxAttempts = opts.quick ? 2 : 4;
        acfg.steering.exhaustMappings = 2'500;
        attack::HyperHammerAttack attack(host, soakVmConfig(),
                                         host.dram().mapping(), acfg);
        attack.profilePhase();
        attack::AttackResult result;
        if (soak.checkpointEvery > 0) {
            // Checkpointed campaigns go through the Monte-Carlo
            // engine: attempts are pure per-index trials, so a run
            // killed here and resumed with --resume reproduces the
            // straight run's table bit for bit.
            snapshot::CheckpointPolicy policy;
            policy.path = soak.checkpointPath + "_s" +
                std::to_string(plan_seed);
            policy.everyTrials = soak.checkpointEvery;
            policy.resume = soak.resume;
            policy.stopAfterTrials = soak.killAt;
            result = attack.runAttempts(acfg.maxAttempts, opts.threads,
                                        policy);
        } else {
            result = attack.run();
        }

        uint64_t retries = 0;
        for (const attack::AttemptOutcome &outcome : result.outcomes)
            retries += outcome.retries;
        successes += result.success;
        degraded += result.degraded;
        faults_total += result.faultsInjected;
        table.addRow({
            std::to_string(plan_seed),
            base::errorName(result.status.error()),
            result.degraded ? "yes" : "no",
            std::to_string(result.attempts),
            std::to_string(retries),
            std::to_string(result.reprofiles),
            std::to_string(result.faultsInjected),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("soak: %u/%u attacks escalated, %u degraded, "
                "%llu faults fired\n",
                successes, soak.trials, degraded,
                static_cast<unsigned long long>(faults_total));

    if (!soak.jsonOut.empty()) {
        const double trials = soak.trials ? soak.trials : 1;
        report.set("trials", static_cast<uint64_t>(soak.trials));
        report.set("successes", static_cast<uint64_t>(successes));
        report.set("success_rate", successes / trials);
        report.set("degraded", static_cast<uint64_t>(degraded));
        report.set("degraded_rate", degraded / trials);
        report.set("faults_fired", faults_total);
        report.set("intensity", soak.intensity);
        report.set("seed_base", soak.seedBase);
        if (!report.writeFile(soak.jsonOut))
            std::fprintf(stderr, "warning: cannot write %s\n",
                         soak.jsonOut.c_str());
        else
            std::fprintf(stderr, "wrote %s\n", soak.jsonOut.c_str());
    }
    return 0;
}
