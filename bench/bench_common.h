/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: flag
 * parsing (scale, seed, quick mode) and common setup helpers.
 *
 * Every bench prints the paper's reference numbers next to the
 * measured ones; EXPERIMENTS.md records a snapshot of both.
 */

#ifndef HYPERHAMMER_BENCH_BENCH_COMMON_H
#define HYPERHAMMER_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "hyperhammer/hyperhammer.h"

namespace hh::bench {

/** Command-line options shared by the bench binaries. */
struct Options
{
    /** Host memory (0 = each bench's default). */
    uint64_t hostBytes = 0;
    uint64_t seed = 1;
    /** Reduced workloads for smoke runs. */
    bool quick = false;
    /** Worker threads for Monte-Carlo batches (0 = all cores). */
    unsigned threads = 1;
    /** Restrict to one system preset ("", "s1", "s2", "s3"). */
    std::string system;

    static Options
    parse(int argc, char **argv)
    {
        Options opts;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                return arg.compare(0, len, prefix) == 0
                    ? arg.c_str() + len : nullptr;
            };
            if (const char *v = value("--host-gib=")) {
                opts.hostBytes = std::strtoull(v, nullptr, 0) * 1_GiB;
            } else if (const char *v2 = value("--seed=")) {
                opts.seed = std::strtoull(v2, nullptr, 0);
            } else if (const char *v3 = value("--system=")) {
                opts.system = v3;
            } else if (const char *v4 = value("--threads=")) {
                opts.threads = static_cast<unsigned>(
                    std::strtoul(v4, nullptr, 0));
            } else if (arg == "--quick") {
                opts.quick = true;
            } else if (arg == "--help" || arg == "-h") {
                std::printf(
                    "options: [--host-gib=N] [--seed=N] [--quick] "
                    "[--threads=N] [--system=s1|s2|s3]\n");
                std::exit(0);
            }
        }
        return opts;
    }

    /** True when @p name is selected (empty selection = all). */
    bool
    wants(const std::string &name) const
    {
        return system.empty() || system == name;
    }
};

/** Preset by lowercase name, with optional memory override. */
inline sys::SystemConfig
presetByName(const std::string &name, const Options &opts)
{
    sys::SystemConfig cfg = name == "s2" ? sys::SystemConfig::s2(opts.seed)
        : name == "s3" ? sys::SystemConfig::s3(opts.seed)
                       : sys::SystemConfig::s1(opts.seed);
    if (opts.hostBytes)
        cfg.withMemory(opts.hostBytes);
    return cfg;
}

/**
 * The paper's attacker VM shape, scaled with host memory: boot 1/16 of
 * host, virtio-mem plugged 12/16 (total 13/16, like 13 GB of 16 GB).
 */
inline vm::VmConfig
paperVmConfig(const sys::SystemConfig &host_cfg)
{
    const uint64_t total = host_cfg.dram.totalBytes;
    vm::VmConfig cfg;
    cfg.bootMemBytes = total / 16;
    cfg.virtioMemRegionSize = total;
    cfg.virtioMemPlugged = total * 12 / 16;
    return cfg;
}

/** The profilable region: the VM's plugged virtio-mem hugepages. */
inline std::vector<GuestPhysAddr>
profilableRegion(vm::VirtualMachine &machine)
{
    std::vector<GuestPhysAddr> region;
    for (GuestPhysAddr hp : machine.hugePageGpas()) {
        if (machine.memDevice_().contains(hp))
            region.push_back(hp);
    }
    return region;
}

/** "60,000 mappings" scaled with host size (the paper's 16 GB value). */
inline uint32_t
scaledMappings(const sys::SystemConfig &cfg)
{
    return static_cast<uint32_t>(
        60'000ull * cfg.dram.totalBytes / (16_GiB));
}

} // namespace hh::bench

#endif // HYPERHAMMER_BENCH_BENCH_COMMON_H
