/**
 * @file
 * Nightly dispatcher soak: the supervisor control plane under
 * deterministic worker misbehaviour and dispatch.* chaos faults.
 *
 * Each round supervises a synthetic sweep of fork()ed workers whose
 * artifacts are pure functions of their trial range -- no campaign is
 * simulated, so the soak measures the control plane (leases, retry
 * backoff, quarantine, ledger persistence), not the simulator. Workers
 * misbehave deterministically from the round seed: some crash on their
 * first attempt, some hang until the lease reclaims them, and a
 * FaultPlan::randomized injector fires the four dispatch.* sites on
 * top. After every round the supervisor's merged result is checked
 * against an in-process strict merge of the same tiling (or, when
 * chaos quarantined a shard, the missing ranges are checked to tile
 * exactly what the Done shards do not cover) -- any divergence is an
 * identity failure and the soak exits non-zero.
 *
 * Emits BENCH_dispatch.json (via --json-out=) for the nightly trend
 * pipeline: control-plane counters plus shards_per_second.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "bench_common.h"
#include "bench_json.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct SoakOptions
{
    unsigned rounds = 6;
    unsigned shards = 8;
    uint64_t trialsPerShard = 8;
    uint64_t seedBase = 1;
    double intensity = 1.0;
    std::string workDir = "dispatch_soak_work";
    std::string jsonOut;

    static SoakOptions
    parse(int argc, char **argv)
    {
        SoakOptions soak;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                return arg.compare(0, len, prefix) == 0
                    ? arg.c_str() + len : nullptr;
            };
            if (const char *v = value("--rounds="))
                soak.rounds = static_cast<unsigned>(
                    std::strtoul(v, nullptr, 0));
            else if (const char *v2 = value("--shards="))
                soak.shards = static_cast<unsigned>(
                    std::strtoul(v2, nullptr, 0));
            else if (const char *v3 = value("--seed-base="))
                soak.seedBase = std::strtoull(v3, nullptr, 0);
            else if (const char *v4 = value("--intensity="))
                soak.intensity = std::strtod(v4, nullptr);
            else if (const char *v5 = value("--work-dir="))
                soak.workDir = v5;
            else if (const char *v6 = value("--json-out="))
                soak.jsonOut = v6;
        }
        return soak;
    }
};

attack::AttemptOutcome
syntheticOutcome(uint64_t round_seed, uint64_t trial)
{
    attack::AttemptOutcome outcome;
    outcome.success = false;
    outcome.bitsTargeted =
        static_cast<unsigned>(1 + (trial + round_seed) % 12);
    outcome.releasedSubBlocks = trial * 3 + 1;
    outcome.demotions = trial * 5 + 2;
    outcome.changedPages = trial * 7 + round_seed % 5;
    outcome.epteCandidates = trial % 4;
    outcome.duration = base::SimTime(1000 + trial * 17);
    outcome.retries = static_cast<unsigned>(trial % 3);
    outcome.backoffTime = base::SimTime(trial * 11);
    outcome.faultsFired = trial % 2;
    return outcome;
}

shard::ShardResult
shardFor(uint64_t fingerprint, uint64_t total, uint64_t round_seed,
         const shard::ShardRange &range)
{
    shard::ShardResult shard;
    shard.manifest.campaignFingerprint = fingerprint;
    shard.manifest.totalTrials = total;
    shard.manifest.range = range;
    for (uint64_t trial = range.begin; trial < range.end; ++trial)
        shard.outcomes.push_back(syntheticOutcome(round_seed, trial));
    return shard;
}

/** Deterministic misbehaviour gate for (round, shard, attempt). */
bool
crashesOn(uint64_t round_seed, uint32_t shard, uint32_t attempt)
{
    return attempt == 1
        && base::mix64(round_seed, shard * 2 + 1) % 4 == 0;
}

bool
hangsOn(uint64_t round_seed, uint32_t shard, uint32_t attempt)
{
    return attempt == 1
        && base::mix64(round_seed, shard * 2) % 8 == 0;
}

dispatch::WorkerLauncher
soakLauncher(uint64_t fingerprint, uint64_t total,
             uint64_t round_seed)
{
    return [fingerprint, total,
            round_seed](const dispatch::WorkerSpec &spec) -> long {
        const pid_t pid = ::fork();
        if (pid != 0)
            return pid;
        if (crashesOn(round_seed, spec.shardIndex, spec.attempt))
            ::_exit(1);
        if (hangsOn(round_seed, spec.shardIndex, spec.attempt)) {
            snapshot::touchHeartbeat(spec.heartbeatPath, 0);
            for (;;)
                dispatch::sleepSeconds(0.05); // await SIGKILL
        }
        if (!shard::saveShard(
                 spec.artifactPath,
                 shardFor(fingerprint, total, round_seed, spec.range))
                 .ok())
            ::_exit(9);
        ::_exit(0);
    };
}

/** Every trial of [0, total) is either merged or reported missing. */
bool
coverageIsExact(const shard::SweepReport &report,
                const dispatch::Ledger &ledger, uint64_t total)
{
    std::vector<shard::ShardRange> covered;
    for (const dispatch::ShardJob &job : ledger.jobs) {
        if (job.state == dispatch::ShardState::Done)
            covered.push_back(job.range);
    }
    covered.insert(covered.end(), report.missing.begin(),
                   report.missing.end());
    std::sort(covered.begin(), covered.end(),
              [](const shard::ShardRange &a, const shard::ShardRange &b) {
                  return a.begin < b.begin;
              });
    uint64_t next = 0;
    for (const shard::ShardRange &range : covered) {
        if (range.begin != next)
            return false;
        next = range.end;
    }
    return next == total;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    SoakOptions soak = SoakOptions::parse(argc, argv);
    if (opts.quick) {
        soak.rounds = std::min(soak.rounds, 2u);
        soak.shards = std::min(soak.shards, 4u);
    }
    (void)::mkdir(soak.workDir.c_str(), 0777); // EEXIST is fine

    std::printf("== dispatch soak: %u rounds x %u shards, "
                "chaos intensity %.2f ==\n",
                soak.rounds, soak.shards, soak.intensity);

    JsonReport report("bench_dispatch_soak");
    analysis::TextTable table({"Round", "Launches", "Retries",
                               "Lease exp", "Spawn fail", "Torn",
                               "HB loss", "Quarantined", "Identity"});
    dispatch::SweepStats totals;
    unsigned identity_failures = 0;
    unsigned degraded_rounds = 0;
    const double t0 = dispatch::monotonicSeconds();
    for (unsigned round = 0; round < soak.rounds; ++round) {
        const uint64_t round_seed = soak.seedBase + round;
        const uint64_t fingerprint =
            base::mix64(0xd15ba7c000000000ull | round, round_seed);
        const uint64_t total = soak.trialsPerShard * soak.shards;
        const std::vector<shard::ShardRange> ranges =
            shard::planShards(total, soak.shards);

        fault::FaultInjector injector(
            fault::FaultPlan::randomized(round_seed, soak.intensity),
            base::mix64(fingerprint, round_seed));
        dispatch::SupervisorConfig cfg;
        cfg.ledgerPath = soak.workDir + "/ledger.bin";
        cfg.artifactDir = soak.workDir;
        cfg.leaseSeconds = 0.5; // hangs resolve fast
        cfg.pollSeconds = 0.01;
        cfg.maxAttempts = 4;
        cfg.backoff.baseMs = 1;
        cfg.backoff.capMs = 8;
        cfg.maxParallel = soak.shards;
        cfg.injector = &injector;
        dispatch::Supervisor sup(
            cfg, soakLauncher(fingerprint, total, round_seed));

        bool identity_ok = true;
        const base::Status opened =
            sup.openSweep(fingerprint, total, ranges, false);
        if (!opened.ok()) {
            std::fprintf(stderr, "round %u: openSweep failed: %s\n",
                         round, base::errorName(opened.error()));
            identity_ok = false;
        } else {
            const auto swept = sup.runSweep();
            if (!swept.ok()) {
                std::fprintf(stderr, "round %u: runSweep failed: %s\n",
                             round, base::errorName(swept.error()));
                identity_ok = false;
            } else if (swept->partial()) {
                // Chaos exhausted a shard's attempts: the merged
                // prefix plus the reported holes must still tile the
                // campaign exactly.
                ++degraded_rounds;
                identity_ok =
                    coverageIsExact(*swept, sup.ledger(), total);
            } else {
                std::vector<shard::ShardResult> reference;
                for (const shard::ShardRange &range : ranges)
                    reference.push_back(shardFor(fingerprint, total,
                                                 round_seed, range));
                const auto merged =
                    shard::mergeShards(std::move(reference));
                identity_ok = merged.ok()
                    && snapshot::diffAttackResults(*merged,
                                                   swept->result)
                           .empty();
            }
        }

        const dispatch::SweepStats &s = sup.stats();
        totals.launches += s.launches;
        totals.retries += s.retries;
        totals.leaseExpiries += s.leaseExpiries;
        totals.spawnFailures += s.spawnFailures;
        totals.tornArtifacts += s.tornArtifacts;
        totals.heartbeatLossFaults += s.heartbeatLossFaults;
        totals.quarantines += s.quarantines;
        totals.mergeBusyRetries += s.mergeBusyRetries;
        totals.ledgerSaves += s.ledgerSaves;
        identity_failures += identity_ok ? 0 : 1;
        table.addRow({
            std::to_string(round),
            std::to_string(s.launches),
            std::to_string(s.retries),
            std::to_string(s.leaseExpiries),
            std::to_string(s.spawnFailures),
            std::to_string(s.tornArtifacts),
            std::to_string(s.heartbeatLossFaults),
            std::to_string(s.quarantines),
            identity_ok ? "ok" : "FAIL",
        });
    }
    const double elapsed =
        std::max(dispatch::monotonicSeconds() - t0, 1e-9);

    std::printf("%s\n", table.render().c_str());
    const uint64_t shard_runs =
        static_cast<uint64_t>(soak.rounds) * soak.shards;
    std::printf("soak: %llu supervised shards in %u rounds, "
                "%llu launches, %llu retries, %u degraded round(s), "
                "%u identity failure(s)\n",
                static_cast<unsigned long long>(shard_runs),
                soak.rounds,
                static_cast<unsigned long long>(totals.launches),
                static_cast<unsigned long long>(totals.retries),
                degraded_rounds, identity_failures);

    if (!soak.jsonOut.empty()) {
        report.set("rounds", static_cast<uint64_t>(soak.rounds));
        report.set("shards_total", shard_runs);
        report.set("shards_per_second", shard_runs / elapsed);
        report.set("launches", totals.launches);
        report.set("retries", totals.retries);
        report.set("lease_expiries", totals.leaseExpiries);
        report.set("spawn_failures", totals.spawnFailures);
        report.set("torn_artifacts", totals.tornArtifacts);
        report.set("heartbeat_loss", totals.heartbeatLossFaults);
        report.set("quarantines", totals.quarantines);
        report.set("merge_busy_retries", totals.mergeBusyRetries);
        report.set("ledger_saves", totals.ledgerSaves);
        report.set("degraded_rounds",
                   static_cast<uint64_t>(degraded_rounds));
        report.set("identity_failures",
                   static_cast<uint64_t>(identity_failures));
        report.set("intensity", soak.intensity);
        report.set("seed_base", soak.seedBase);
        if (!report.writeFile(soak.jsonOut))
            std::fprintf(stderr, "warning: cannot write %s\n",
                         soak.jsonOut.c_str());
        else
            std::fprintf(stderr, "wrote %s\n", soak.jsonOut.c_str());
    }
    return identity_failures == 0 ? 0 : 1;
}
