/**
 * @file
 * Experiment E7 -- Section 5.1 prerequisites: reverse engineering the
 * DRAM bank functions with DRAMDig and verifying the THP
 * bit-preservation property both attacks machines exhibit.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

void
runSystem(const std::string &name, const Options &opts,
          analysis::TextTable &table)
{
    sys::SystemConfig cfg = presetByName(name, opts);
    if (opts.hostBytes == 0)
        cfg.withMemory(2_GiB); // DRAMDig needs little memory
    sys::HostSystem host(cfg);

    analysis::DramDigConfig dig_cfg;
    dig_cfg.seed = base::mix64(opts.seed, 0xd16);
    analysis::DramDig dig(host.dram(), dig_cfg);

    const base::SimTime start = host.clock().now();
    const analysis::DramDigResult result = dig.run();
    const base::SimTime elapsed = host.clock().now() - start;

    const bool exact = result.recovered()
        && analysis::DramDig::sameSpan(
            result.bankMasks, cfg.dram.mapping.bankMasks());
    const bool thp_ok = result.recovered()
        && dram::AddressMapping(result.bankMasks, 18, 33)
               .bankBitsPreservedBy(21);

    table.addRow({
        cfg.name,
        cfg.dram.mapping.describe(),
        exact ? "yes" : "NO",
        thp_ok ? "yes" : "NO",
        analysis::formatCount(result.timedAccesses),
        base::SimClock::format(elapsed),
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E7 / Section 5.1: DRAMDig bank-function recovery "
                "and the THP property ==\n");
    analysis::TextTable table({"System", "Configured function",
                               "Recovered (span)",
                               "Preserved by THP",
                               "Timed accesses", "Time"});
    if (opts.wants("s1"))
        runSystem("s1", opts, table);
    if (opts.wants("s2"))
        runSystem("s2", opts, table);
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper: both CPUs' bank functions use only bits "
                "preserved by 2 MB hugepage translation, enabling the "
                "THP-guided profiling of Section 4.1.\n");
    return 0;
}
