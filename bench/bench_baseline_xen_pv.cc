/**
 * @file
 * Baseline: the Xen PV direct-paging attack (Xiao et al., USENIX
 * Security'16) the paper contrasts HyperHammer against (Section 2.1).
 *
 * Under paravirtualization the guest knows machine addresses and
 * chooses which of its frames become page tables, so after profiling
 * it can place a PMD *exactly* on a vulnerable frame and aim the flip
 * at a forged page table it controls: one attempt, deterministic.
 * HyperHammer's HVM setting removes both advantages -- hence Page
 * Steering and hundreds of attempts (Table 3).
 *
 * The bench runs the PV attack across several domains/seeds and
 * reports the attempt statistics next to HyperHammer's.
 */

#include <optional>

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct PvOutcome
{
    bool targetFound = false;
    bool success = false;
    base::SimTime elapsed = 0;
};

PvOutcome
runPvAttack(uint64_t seed)
{
    PvOutcome outcome;
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 2_GiB;
    dram_cfg.seed = seed;
    // The paper-calibrated S1 DIMM characteristics.
    dram_cfg.fault = sys::SystemConfig::s1(seed).dram.fault;
    dram_cfg.fault.weakCellsPerRow *= 4.0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 2_GiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);

    // A PV domain owning 3/4 of the machine.
    xen::PvDomain domain(dram, buddy, buddy.totalPages() * 3 / 4, 1);
    const base::SimTime start = clock.now();

    // Profiling: the PV guest sees machine addresses, so it profiles
    // its frames directly (same hammer budget as Section 5.1); we use
    // the fault oracle as the profile result -- determinism, not
    // discovery, is what this baseline demonstrates -- and charge the
    // virtual profiling time for one pass over the owned frames.
    clock.advance(static_cast<base::SimTime>(
        domain.machineFrames().size() * 512 * 95));

    const dram::AddressMapping &map = dram.mapping();
    const uint64_t granule = 1ull << map.interleaveShift();
    std::optional<dram::WeakCell> cell;
    Pfn pmd = kInvalidPfn;
    Pfn forged_pt = kInvalidPfn;
    dram::BankId bank = 0;
    dram::RowId row = 0;
    for (Pfn frame : domain.machineFrames()) {
        const dram::RowId frame_row =
            map.rowOf(HostPhysAddr(frame * kPageSize));
        for (dram::BankId b = 0; b < map.bankCount() && !cell; ++b) {
            if (!dram.faultModel().rowIsWeak(b, frame_row))
                continue;
            for (const auto &candidate :
                 dram.faultModel().weakCellsInRow(b, frame_row)) {
                if (candidate.bitInWord() < 12
                    || candidate.bitInWord() > 20
                    || candidate.direction
                        != dram::FlipDirection::ZeroToOne
                    || !candidate.stable()) {
                    continue;
                }
                const dram::BankId cls = b ^ map.rowClass(frame_row);
                const auto &offsets = map.classOffsets(cls);
                const HostPhysAddr addr(
                    (static_cast<uint64_t>(frame_row)
                     << map.rowLoBit())
                    | (static_cast<uint64_t>(
                           offsets[candidate.byteInRow / granule])
                       << map.interleaveShift())
                    | (candidate.byteInRow % granule));
                if (addr.pfn() != frame)
                    continue;
                const uint64_t bit = candidate.bitInWord() - 12;
                for (Pfn f : domain.machineFrames()) {
                    if (f == frame || !((f >> bit) & 1))
                        continue;
                    const Pfn reach = f & ~(1ull << bit);
                    if (reach != frame && domain.owns(reach)) {
                        cell = candidate;
                        pmd = frame;
                        forged_pt = f;
                        bank = b;
                        row = frame_row;
                        break;
                    }
                }
                if (cell)
                    break;
            }
        }
        if (cell)
            break;
    }
    if (!cell) {
        outcome.elapsed = clock.now() - start;
        return outcome;
    }
    outcome.targetFound = true;

    const dram::BankId cls = bank ^ map.rowClass(row);
    const auto &offsets = map.classOffsets(cls);
    const HostPhysAddr cell_addr(
        (static_cast<uint64_t>(row) << map.rowLoBit())
        | (static_cast<uint64_t>(offsets[cell->byteInRow / granule])
           << map.interleaveShift())
        | (cell->byteInRow % granule));
    const unsigned slot =
        static_cast<unsigned>((cell_addr.value() % kPageSize) / 8);
    const Pfn secret = 4;
    const Pfn reachable =
        forged_pt & ~(1ull << (cell->bitInWord() - 12));

    if (!domain.pinPageTable(pmd, xen::PtLevel::Pmd).ok()
        || !domain.pinPageTable(reachable, xen::PtLevel::Pt).ok()) {
        outcome.elapsed = clock.now() - start;
        return outcome;
    }
    dram.backend().write64(
        HostPhysAddr(forged_pt * kPageSize),
        (secret << 12) | xen::kPvPresent | xen::kPvWrite);
    if (!domain
             .mmuUpdate(pmd, slot,
                        (reachable << 12) | xen::kPvPresent
                            | xen::kPvWrite)
             .ok()) {
        outcome.elapsed = clock.now() - start;
        return outcome;
    }

    const auto addr_in = [&](dram::RowId r) {
        const dram::BankId c = bank ^ map.rowClass(r);
        return HostPhysAddr(
            (static_cast<uint64_t>(r) << map.rowLoBit())
            | (static_cast<uint64_t>(map.classOffsets(c).front())
               << map.interleaveShift()));
    };
    (void)dram.hammer({addr_in(row + 1), addr_in(row + 2)}, 250'000);

    auto resolved = domain.resolve(pmd, slot, 0);
    outcome.success = resolved.ok() && *resolved == secret;
    outcome.elapsed = clock.now() - start;
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== Baseline / Section 2.1: Xen PV direct paging "
                "(Xiao et al.) vs. HyperHammer ==\n");
    analysis::TextTable table({"Seed", "Vulnerable PMD slot found",
                               "Escaped", "Attempts", "Virtual time"});
    unsigned successes = 0;
    unsigned found = 0;
    const unsigned runs = opts.quick ? 3 : 8;
    for (unsigned i = 0; i < runs; ++i) {
        const PvOutcome outcome = runPvAttack(opts.seed + i);
        found += outcome.targetFound;
        successes += outcome.success;
        table.addRow({
            std::to_string(opts.seed + i),
            outcome.targetFound ? "yes" : "no",
            outcome.success ? "YES" : "no",
            outcome.success ? "1" : "-",
            base::SimClock::format(outcome.elapsed),
        });
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n%u/%u runs escaped on the FIRST attempt (PV "
                "guests know machine addresses and place their own "
                "page tables). HyperHammer's HVM setting needs "
                "hundreds of attempts for the same outcome (Table 3) "
                "-- the cost of hardware-assisted isolation.\n",
                successes, runs);
    (void)found;
    return 0;
}
