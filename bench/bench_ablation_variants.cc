/**
 * @file
 * Experiment E9 -- Section 6 variants ablation: how hard is Page
 * Steering under different overcommit devices and hypervisor
 * allocator policies?
 *
 *   - KVM + virtio-mem (the paper's setting): releases are order-9
 *     MIGRATE_UNMOVABLE blocks; the vIOMMU exhaustion step is needed
 *     because EPT allocations prefer small unmovable blocks.
 *   - KVM + virtio-mem WITHOUT exhaustion: the noise pages soak up
 *     the spray; placement collapses.
 *   - Xen-style (type-agnostic table allocation): released blocks are
 *     eligible without any migrate-type games ("launching Page
 *     Steering may be even easier on Xen").
 *
 * Metric: fraction of a released block's 512 frames that end up
 * holding EPT pages after a full spray.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct Variant
{
    const char *name;
    kvm::TableAllocPolicy policy;
    bool exhaust;
    bool quiet_noise;
};

void
runVariant(const Variant &variant, const Options &opts,
           analysis::TextTable &table)
{
    sys::SystemConfig cfg = presetByName("s1", opts);
    if (opts.hostBytes == 0)
        cfg.withMemory(4_GiB);
    if (variant.quiet_noise)
        cfg.noise.unmovableFreePages = 16;
    sys::HostSystem host(cfg);

    vm::VmConfig vm_cfg = paperVmConfig(cfg);
    vm_cfg.mmu.tableAlloc = variant.policy;
    auto machine = host.createVm(vm_cfg);

    attack::SteeringConfig steer_cfg;
    steer_cfg.exhaustMappings = scaledMappings(cfg);
    attack::PageSteering steering(*machine, host.clock(), steer_cfg);
    if (variant.exhaust)
        steering.exhaustNoisePages();

    // Release one block, then spray a bounded buffer -- small enough
    // that, unexhausted, the pre-existing noise pages absorb it
    // entirely (the situation Section 4.2.1 exists to avoid).
    machine->memDriver().setSuppressAutoPlug(true);
    auto &device = machine->memDevice_();
    const GuestPhysAddr victim = device.subBlockGpa(11);
    auto victim_hpa = machine->debugTranslate(victim);
    (void)machine->memDriver().unplugSpecific(victim);
    steering.sprayEptes(cfg.dram.totalBytes / 4, {victim.value()});

    uint64_t reused = 0;
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        const mm::PageFrame &frame =
            host.buddy().frame(victim_hpa->pfn() + i);
        if (!frame.free && frame.use == mm::PageUse::EptPage)
            ++reused;
    }
    table.addRow({
        variant.name,
        variant.exhaust ? "yes" : "no",
        analysis::formatCount(machine->mmu().eptPageCount()),
        analysis::formatPercent(
            static_cast<double>(reused) / kPagesPerHugePage),
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E9 / Section 6: steering under device/allocator "
                "variants ==\n");
    analysis::TextTable table({"Variant", "vIOMMU exhaustion",
                               "EPT pages", "Released block reused"});
    const Variant variants[] = {
        {"KVM + virtio-mem (paper)",
         kvm::TableAllocPolicy::UnmovableLists, true, false},
        {"KVM + virtio-mem, no exhaustion",
         kvm::TableAllocPolicy::UnmovableLists, false, false},
        {"Xen-style allocator, no vIOMMU step",
         kvm::TableAllocPolicy::AnyList, false, true},
    };
    for (const Variant &variant : variants)
        runVariant(variant, opts, table);
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper shape: without exhausting the unmovable "
                "small blocks the spray never reaches the released "
                "block on KVM; Xen's type-agnostic allocator needs no "
                "such step (Section 6).\n");
    return 0;
}
