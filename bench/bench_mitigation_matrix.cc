/**
 * @file
 * Experiment E11 -- the mitigation-evaluation matrix (Section 6).
 *
 * Sweeps attacks x defenses x host configurations; every cell is one
 * deterministic Monte-Carlo campaign against a defended world, so the
 * whole table is a pure function of (configuration, seed) and
 * bitwise-identical at any --threads x --shards combination (the
 * printed matrix fingerprint makes that checkable from the shell).
 *
 * Attacks: "pairwise" is the paper's per-target double-sided
 * re-trigger; "combined" batches every target's aggressors into one
 * interleaved TRRespass-style burst, the variant that stresses
 * capacity-bounded TRR trackers.
 *
 * Defenses: none (baseline), the Section 6 virtio-mem quarantine,
 * Siloz-style guard-row domains, CATT kernel/user partitioning, the
 * CATTmew double-ownership hole (expected to re-enable the attack),
 * and a TRR+ECC DRAM sweep.
 *
 * --smoke pins the 2x2 golden-trace configuration (none/quarantine x
 * pairwise/combined) used by tools/check_golden.py.
 */

#include "bench_common.h"
#include "bench_json.h"

using namespace hh;
using namespace hh::bench;

namespace {

struct MatrixOptions
{
    bool smoke = false;
    uint64_t trials = 0; // 0 = mode default
    unsigned shards = 1;
    std::string defenses; // comma-separated; empty = mode default
    std::string attacks;  // comma-separated; empty = mode default
    std::string jsonOut = "BENCH_mitigation.json";

    static MatrixOptions
    parse(int argc, char **argv)
    {
        MatrixOptions opts;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                return arg.compare(0, len, prefix) == 0
                    ? arg.c_str() + len : nullptr;
            };
            if (arg == "--smoke")
                opts.smoke = true;
            else if (const char *v = value("--trials="))
                opts.trials = std::strtoull(v, nullptr, 0);
            else if (const char *v2 = value("--shards="))
                opts.shards = static_cast<unsigned>(
                    std::strtoul(v2, nullptr, 0));
            else if (const char *v3 = value("--defenses="))
                opts.defenses = v3;
            else if (const char *v4 = value("--attacks="))
                opts.attacks = v4;
            else if (const char *v5 = value("--json-out="))
                opts.jsonOut = v5;
        }
        return opts;
    }
};

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    size_t begin = 0;
    while (begin <= csv.size()) {
        const size_t comma = csv.find(',', begin);
        const std::string part = csv.substr(
            begin, comma == std::string::npos ? std::string::npos
                                              : comma - begin);
        if (!part.empty())
            parts.push_back(part);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return parts;
}

/** Sanitize a cell label into a JSON metric key component. */
std::string
keyOf(const std::string &label)
{
    std::string key = label;
    for (char &c : key) {
        if (c == '-' || c == '+' || c == ' ')
            c = '_';
    }
    return key;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const MatrixOptions mopts = MatrixOptions::parse(argc, argv);

    mitigate::MatrixSpec spec;
    spec.threads = opts.threads;
    spec.shards = mopts.shards == 0 ? 1 : mopts.shards;
    // Full profile (as in E4): the reusable host-physical record is
    // built once per cell, and a deeper profile gives every campaign
    // more relocatable targets per attempt.
    spec.attack.profiler.stopAfterExploitable = 0;

    if (mopts.smoke) {
        // The golden 2x2: small host, boosted flip density (so the
        // baseline profile is non-trivial at 1 GiB), short campaigns.
        Options local = opts;
        if (local.hostBytes == 0)
            local.hostBytes = 1_GiB;
        sys::SystemConfig cfg = presetByName("s1", local);
        cfg.dram.fault.weakCellsPerRow *= 8;
        spec.hosts = {cfg};
        spec.vm.bootMemBytes = 64_MiB;
        spec.vm.virtioMemRegionSize = 1_GiB;
        spec.vm.virtioMemPlugged = 640_MiB;
        spec.attack.steering.exhaustMappings = 2'500;
        spec.defenses = {"none", "quarantine"};
        spec.attacks = {"pairwise", "combined"};
        spec.trials = 4;
    } else {
        Options local = opts;
        if (local.hostBytes == 0)
            local.hostBytes = opts.quick ? 1_GiB : 2_GiB;
        for (const char *name : {"s1", "s3"}) {
            if (!opts.wants(name))
                continue;
            // s3 only in explicit selections: the default sweep is
            // one host so the nightly matrix stays bounded.
            if (std::string(name) == "s3" && opts.system.empty())
                continue;
            sys::SystemConfig cfg = presetByName(name, local);
            if (local.hostBytes <= 1_GiB)
                cfg.dram.fault.weakCellsPerRow *= 8;
            spec.hosts.push_back(cfg);
        }
        if (!spec.hosts.empty()) {
            const sys::SystemConfig &first = spec.hosts.front();
            if (local.hostBytes <= 1_GiB) {
                // The calibrated small-scale configuration (shared
                // with the tier-2 property tests): a leaner VM and a
                // gentler vIOMMU exhaustion keep the EPT spray
                // concentrated enough that the graded progress
                // signals stay measurable in tens of trials.
                spec.vm.bootMemBytes = 64_MiB;
                spec.vm.virtioMemRegionSize = 1_GiB;
                spec.vm.virtioMemPlugged = 640_MiB;
                spec.attack.steering.exhaustMappings = 2'500;
            } else {
                spec.vm = paperVmConfig(first);
                spec.attack.steering.exhaustMappings =
                    scaledMappings(first);
            }
        }
        spec.defenses = {"none",  "quarantine", "siloz",
                         "catt",  "catt-hole",  "trr-ecc"};
        spec.attacks = {"pairwise", "combined"};
        spec.trials = opts.quick ? 8 : 24;
    }
    if (mopts.trials != 0)
        spec.trials = mopts.trials;
    if (!mopts.defenses.empty())
        spec.defenses = splitCsv(mopts.defenses);
    if (!mopts.attacks.empty())
        spec.attacks = splitCsv(mopts.attacks);

    std::printf("== E11: mitigation-evaluation matrix ==\n");
    std::printf("(%llu trial(s) per cell; success rate is per "
                "attempt, stopping at the first escalation)\n",
                static_cast<unsigned long long>(spec.trials));

    WallTimer sweep_timer;
    auto matrix = mitigate::runMatrix(spec);
    if (!matrix) {
        std::fprintf(stderr, "matrix sweep failed (error %d)\n",
                     static_cast<int>(matrix.error()));
        return 1;
    }
    const double sweep_seconds = sweep_timer.seconds();

    analysis::TextTable table({"Host", "Defense", "Attack", "Bits",
                               "Attempts", "Released", "Flips",
                               "Cands", "Success", "Avg att (virt)",
                               "Reserved", "Slowdown"});
    JsonReport report("bench_mitigation_matrix");
    for (const mitigate::MatrixCell &cell : matrix->cells) {
        table.addRow({
            cell.host,
            cell.defense,
            cell.attackName,
            std::to_string(cell.profiledBits),
            std::to_string(cell.attempts),
            std::to_string(cell.releasedSubBlocks),
            std::to_string(cell.flippedMappings),
            std::to_string(cell.epteCandidates),
            cell.success ? "yes" : "no",
            analysis::formatDouble(cell.avgAttemptSeconds, 2) + " s",
            std::to_string(cell.overhead.reservedBytes >> 20)
                + " MiB",
            analysis::formatDouble(cell.overhead.slowdownFactor, 3)
                + "x",
        });
        const std::string key = keyOf(cell.host) + "_"
            + keyOf(cell.defense) + "_" + keyOf(cell.attackName);
        report.set(key + "_success_rate", cell.successRate);
        report.set(key + "_attempts",
                   static_cast<uint64_t>(cell.attempts));
        report.set(key + "_profiled_bits", cell.profiledBits);
        report.set(key + "_flipped_mappings", cell.flippedMappings);
        report.set(key + "_epte_candidates", cell.epteCandidates);
        report.set(key + "_reserved_bytes",
                   cell.overhead.reservedBytes);
    }
    std::printf("%s", table.render().c_str());

    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(
                      matrix->fingerprint()));
    std::printf("matrix fingerprint: %s (identical for any "
                "--threads x --shards)\n", fp);

    report.set("matrix_fingerprint", std::string(fp));
    report.set("cells", static_cast<uint64_t>(matrix->cells.size()));
    report.set("sweep_wall_seconds", sweep_seconds);
    report.set("cells_per_second",
               sweep_seconds > 0
                   ? static_cast<double>(matrix->cells.size())
                       / sweep_seconds
                   : 0.0);
    if (!matrix->cells.empty())
        report.setConfigFingerprint(matrix->fingerprint());
    if (!report.writeFile(mopts.jsonOut))
        std::fprintf(stderr, "warning: cannot write %s\n",
                     mopts.jsonOut.c_str());
    else
        std::printf("wrote %s\n", mopts.jsonOut.c_str());
    return 0;
}
