/**
 * @file
 * Minimal JSON metrics reporter for the perf-smoke benches.
 *
 * A bench collects flat key -> number (or string) metrics into a
 * JsonReport and writes them as one sorted JSON object, e.g.
 * BENCH_clone.json / BENCH_table3.json. tools/check_bench.py diffs the
 * gated ratio metrics against the checked-in baseline in
 * bench/baselines/ and fails CI on a >20% regression.
 *
 * This header is the one sanctioned wall-clock site outside
 * src/base/sim_clock.*: perf metrics measure the host, not the
 * simulation, so they must NOT be charged to virtual time (and they
 * never feed back into simulated behaviour -- the determinism
 * guarantee is about simulation state, not about how long the host
 * took to compute it). The hh-lint wall-clock exemption for this file
 * lives in .hh-lint.toml.
 */

#ifndef HYPERHAMMER_BENCH_BENCH_JSON_H
#define HYPERHAMMER_BENCH_BENCH_JSON_H

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <variant>

namespace hh::bench {

/** Host wall-clock stopwatch (perf measurement only; see @file). */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    /** Seconds since construction (or the last restart()). */
    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start).count();
    }

    void restart() { start = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Peak resident set size of this process so far, in bytes. */
inline uint64_t
peakRssBytes()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB.
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/**
 * The commit the running binary was built from: $GITHUB_SHA under CI,
 * else `git rev-parse HEAD`, else "unknown". Trend tooling
 * (tools/bench_trend.py) keys history rows on it.
 */
inline std::string
gitSha()
{
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    std::string out;
    if (std::FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[128];
        if (std::fgets(buf, sizeof buf, p) != nullptr) {
            buf[std::strcspn(buf, "\n")] = '\0';
            out = buf;
        }
        ::pclose(p);
    }
    return out.empty() ? "unknown" : out;
}

/**
 * Flat JSON object writer: set() metrics, then writeFile(). Keys are
 * emitted sorted so reports diff cleanly.
 *
 * Constructing with a bench name opts into the standard telemetry
 * envelope: every report gains env_bench, env_git_sha,
 * env_schema_version, env_wall_seconds (process lifetime up to
 * render) and env_peak_rss_bytes, plus env_config_fingerprint when
 * the bench calls setConfigFingerprint(). The env_ prefix keeps
 * envelope keys disjoint from metric keys, so gating and trend
 * tooling can tell the two apart mechanically.
 */
class JsonReport
{
  public:
    JsonReport() = default;

    explicit JsonReport(const std::string &bench_name)
        : benchName(bench_name), envelope(true)
    {
    }

    /** Stamp the campaign/config identity into the envelope. */
    void
    setConfigFingerprint(uint64_t fingerprint)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(fingerprint));
        configFingerprint = buf;
    }

    void set(const std::string &key, double value) { values[key] = value; }
    void
    set(const std::string &key, uint64_t value)
    {
        values[key] = static_cast<double>(value);
    }
    void
    set(const std::string &key, const std::string &value)
    {
        values[key] = value;
    }

    /** Render the report as a pretty-printed JSON object. */
    std::string
    render() const
    {
        // Merge the envelope into a copy so render() stays const and
        // repeatable; wall/RSS are sampled at render time (the whole
        // bench run, not a sub-phase).
        std::map<std::string, std::variant<double, std::string>>
            merged = values;
        if (envelope) {
            merged["env_bench"] = benchName;
            merged["env_git_sha"] = gitSha();
            merged["env_schema_version"] = 1.0;
            merged["env_wall_seconds"] = lifetime.seconds();
            merged["env_peak_rss_bytes"] =
                static_cast<double>(peakRssBytes());
            if (!configFingerprint.empty())
                merged["env_config_fingerprint"] = configFingerprint;
        }
        std::string out = "{\n";
        for (auto it = merged.begin(); it != merged.end(); ++it) {
            out += "  \"" + it->first + "\": ";
            if (const double *num = std::get_if<double>(&it->second)) {
                char buf[64];
                // %.17g round-trips doubles; trim to a clean integer
                // spelling when the value is integral.
                if (*num == static_cast<uint64_t>(*num)
                    && *num >= 0 && *num < 1e15) {
                    std::snprintf(buf, sizeof buf, "%llu",
                                  static_cast<unsigned long long>(*num));
                } else {
                    std::snprintf(buf, sizeof buf, "%.17g", *num);
                }
                out += buf;
            } else {
                out += "\"" + std::get<std::string>(it->second) + "\"";
            }
            out += std::next(it) != merged.end() ? ",\n" : "\n";
        }
        out += "}\n";
        return out;
    }

    /** Write the report to @p path; returns false on I/O failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        const std::string text = render();
        const bool ok =
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
        return (std::fclose(f) == 0) && ok;
    }

  private:
    std::map<std::string, std::variant<double, std::string>> values;
    std::string benchName;
    std::string configFingerprint;
    /** Started at report construction == bench start in practice. */
    WallTimer lifetime;
    bool envelope = false;
};

} // namespace hh::bench

#endif // HYPERHAMMER_BENCH_BENCH_JSON_H
