/**
 * @file
 * Minimal JSON metrics reporter for the perf-smoke benches.
 *
 * A bench collects flat key -> number (or string) metrics into a
 * JsonReport and writes them as one sorted JSON object, e.g.
 * BENCH_clone.json / BENCH_table3.json. tools/check_bench.py diffs the
 * gated ratio metrics against the checked-in baseline in
 * bench/baselines/ and fails CI on a >20% regression.
 *
 * This header is the one sanctioned wall-clock site outside
 * src/base/sim_clock.*: perf metrics measure the host, not the
 * simulation, so they must NOT be charged to virtual time (and they
 * never feed back into simulated behaviour -- the determinism
 * guarantee is about simulation state, not about how long the host
 * took to compute it). The hh-lint wall-clock exemption for this file
 * lives in .hh-lint.toml.
 */

#ifndef HYPERHAMMER_BENCH_BENCH_JSON_H
#define HYPERHAMMER_BENCH_BENCH_JSON_H

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <variant>

namespace hh::bench {

/** Host wall-clock stopwatch (perf measurement only; see @file). */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    /** Seconds since construction (or the last restart()). */
    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start).count();
    }

    void restart() { start = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Peak resident set size of this process so far, in bytes. */
inline uint64_t
peakRssBytes()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB.
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/**
 * Flat JSON object writer: set() metrics, then writeFile(). Keys are
 * emitted sorted so reports diff cleanly.
 */
class JsonReport
{
  public:
    void set(const std::string &key, double value) { values[key] = value; }
    void
    set(const std::string &key, uint64_t value)
    {
        values[key] = static_cast<double>(value);
    }
    void
    set(const std::string &key, const std::string &value)
    {
        values[key] = value;
    }

    /** Render the report as a pretty-printed JSON object. */
    std::string
    render() const
    {
        std::string out = "{\n";
        for (auto it = values.begin(); it != values.end(); ++it) {
            out += "  \"" + it->first + "\": ";
            if (const double *num = std::get_if<double>(&it->second)) {
                char buf[64];
                // %.17g round-trips doubles; trim to a clean integer
                // spelling when the value is integral.
                if (*num == static_cast<uint64_t>(*num)
                    && *num >= 0 && *num < 1e15) {
                    std::snprintf(buf, sizeof buf, "%llu",
                                  static_cast<unsigned long long>(*num));
                } else {
                    std::snprintf(buf, sizeof buf, "%.17g", *num);
                }
                out += buf;
            } else {
                out += "\"" + std::get<std::string>(it->second) + "\"";
            }
            out += std::next(it) != values.end() ? ",\n" : "\n";
        }
        out += "}\n";
        return out;
    }

    /** Write the report to @p path; returns false on I/O failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        const std::string text = render();
        const bool ok =
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
        return (std::fclose(f) == 0) && ok;
    }

  private:
    std::map<std::string, std::variant<double, std::string>> values;
};

} // namespace hh::bench

#endif // HYPERHAMMER_BENCH_BENCH_JSON_H
