/**
 * @file
 * Experiment E6 -- Section 5.3.3: expected time of an end-to-end
 * attack, where profiling must be repeated per attempt.
 *
 * Reproduces the paper's arithmetic with measured inputs: a full
 * profiling pass is timed (virtually) and its exploitable-bit yield
 * counted; profiling for one attempt then costs
 * full_time x 12 / yield, and with ~512 expected attempts the
 * end-to-end estimate lands in the paper's 137-192 day range.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

std::vector<std::string>
runSystem(const std::string &name, const Options &opts,
          const char *paper_days)
{
    Options local = opts;
    if (opts.hostBytes == 0)
        local.hostBytes = opts.quick ? 2_GiB : 16_GiB;
    sys::SystemConfig cfg = presetByName(name, local);
    sys::HostSystem host(cfg);
    auto machine = host.createVm(paperVmConfig(cfg));

    attack::MemoryProfiler profiler(*machine, host.clock(),
                                    host.dram().mapping(),
                                    attack::ProfilerConfig{});
    const attack::ProfileResult result =
        profiler.profile(profilableRegion(*machine));
    const uint64_t exploitable = result.countExploitable();
    if (exploitable == 0) {
        std::printf("  %s: no exploitable bits; rerun with --seed\n",
                    cfg.name.c_str());
        return {};
    }

    const unsigned bits_needed = 12;
    const unsigned expected_attempts = 512; // Section 5.3.1 limit
    const base::SimTime per_attempt_profile =
        attack::expectedEndToEndTime(result.elapsed, exploitable,
                                     bits_needed, 1);
    const base::SimTime end_to_end =
        attack::expectedEndToEndTime(result.elapsed, exploitable,
                                     bits_needed, expected_attempts);

    return {
        cfg.name,
        base::SimClock::format(result.elapsed),
        analysis::formatCount(exploitable),
        base::SimClock::format(per_attempt_profile),
        base::SimClock::format(end_to_end),
        paper_days,
    };
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E6 / Section 5.3.3: expected end-to-end attack "
                "time ==\n");
    analysis::TextTable table({"System", "Full profile", "Expl. bits",
                               "Profile/attempt (12 bits)",
                               "End-to-end (512 attempts)",
                               "paper"});
    // The two systems are independent simulations; profile them
    // concurrently (--threads) and emit rows in fixed order.
    struct Job
    {
        const char *name;
        const char *paperDays;
    };
    std::vector<Job> jobs;
    if (opts.wants("s1"))
        jobs.push_back({"s1", "192 d"});
    if (opts.wants("s2"))
        jobs.push_back({"s2", "137 d"});
    std::vector<std::vector<std::string>> rows(jobs.size());
    base::parallelFor(jobs.size(), opts.threads, [&](uint64_t i) {
        rows[i] = runSystem(jobs[i].name, opts, jobs[i].paperDays);
    });
    for (const std::vector<std::string> &row : rows) {
        if (!row.empty())
            table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper arithmetic: S1 12/96 x 72 h = 9 h per "
                "attempt, x512 = 192 days; S2 12/90 x 48 h = 6.4 h, "
                "x512 = 137 days.\n");
    return 0;
}
