/**
 * @file
 * Micro-benchmarks (google-benchmark) for the hot substrate
 * operations: DRAM accesses, hammer bursts, buddy allocation, EPT
 * walks and IOPT mapping. These guard the simulator's own wall-clock
 * performance -- the table benches iterate these paths millions of
 * times.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "hyperhammer/hyperhammer.h"

using namespace hh;

namespace {

struct World
{
    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;

    World()
    {
        dram::DramConfig cfg;
        cfg.totalBytes = 1_GiB;
        cfg.fault.weakCellsPerRow = 0.001;
        dram = std::make_unique<dram::DramSystem>(cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 1_GiB / kPageSize;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    }
};

void
BM_DramRead64(benchmark::State &state)
{
    World world;
    world.dram->fillPage(100, 0xff);
    uint64_t addr = 100 * kPageSize;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            world.dram->read64(HostPhysAddr(addr)));
        addr = 100 * kPageSize + ((addr + 8) & (kPageSize - 1));
    }
}
BENCHMARK(BM_DramRead64);

void
BM_DramWrite64(benchmark::State &state)
{
    World world;
    uint64_t i = 0;
    for (auto _ : state) {
        world.dram->write64(
            HostPhysAddr(200 * kPageSize + (i % 512) * 8), i);
        ++i;
    }
}
BENCHMARK(BM_DramWrite64);

void
BM_DramTimedAccess(benchmark::State &state)
{
    World world;
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(world.dram->timedAccess(
            HostPhysAddr((i * 64) & (1_GiB - 64))));
        ++i;
    }
}
BENCHMARK(BM_DramTimedAccess);

void
BM_HammerBurst(benchmark::State &state)
{
    World world;
    const dram::AddressMapping &map = world.dram->mapping();
    const dram::BankId cls = 3u ^ map.rowClass(100);
    const HostPhysAddr a(
        (100ull << map.rowLoBit())
        | (static_cast<uint64_t>(map.classOffsets(cls).front())
           << map.interleaveShift()));
    const HostPhysAddr b(a.value() + map.rowStripeBytes());
    const std::vector<HostPhysAddr> aggressors{a, b};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            world.dram->hammer(aggressors, 250'000));
    }
}
BENCHMARK(BM_HammerBurst);

void
BM_BuddyAllocFreeOrder0(benchmark::State &state)
{
    World world;
    for (auto _ : state) {
        auto page = world.buddy->allocPages(
            0, mm::MigrateType::Unmovable, mm::PageUse::KernelData);
        world.buddy->freePages(*page, 0);
    }
}
BENCHMARK(BM_BuddyAllocFreeOrder0);

void
BM_BuddyAllocFreeOrder9(benchmark::State &state)
{
    World world;
    for (auto _ : state) {
        auto block = world.buddy->allocPages(
            9, mm::MigrateType::Movable, mm::PageUse::GuestMemory);
        world.buddy->freePages(*block, 9);
    }
}
BENCHMARK(BM_BuddyAllocFreeOrder9);

void
BM_EptTranslate(benchmark::State &state)
{
    World world;
    kvm::Mmu mmu(*world.dram, *world.buddy, kvm::MmuConfig{}, 1);
    auto block = world.buddy->allocPages(9, mm::MigrateType::Movable,
                                         mm::PageUse::GuestMemory);
    const base::Status mapped = mmu.map2m(GuestPhysAddr(0),
                                          HostPhysAddr(*block * kPageSize));
    HH_ASSERT(mapped.ok());
    uint64_t off = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mmu.translate(GuestPhysAddr(off)));
        off = (off + kPageSize) & (kHugePageSize - 1);
    }
}
BENCHMARK(BM_EptTranslate);

void
BM_EptDemotion(benchmark::State &state)
{
    World world;
    std::unique_ptr<kvm::Mmu> mmu = std::make_unique<kvm::Mmu>(
        *world.dram, *world.buddy, kvm::MmuConfig{}, 1);
    uint64_t gpa = 0;
    std::vector<Pfn> blocks;
    for (auto _ : state) {
        state.PauseTiming();
        if (gpa > 128_MiB) {
            // Recycle the world: demotion is irreversible.
            mmu.reset();
            for (Pfn block : blocks)
                world.buddy->freePages(block, 9);
            blocks.clear();
            mmu = std::make_unique<kvm::Mmu>(
                *world.dram, *world.buddy, kvm::MmuConfig{}, 1);
            gpa = 0;
        }
        auto block = world.buddy->allocPages(
            9, mm::MigrateType::Movable, mm::PageUse::GuestMemory);
        blocks.push_back(*block);
        const base::Status mapped = mmu->map2m(
            GuestPhysAddr(gpa), HostPhysAddr(*block * kPageSize));
        HH_ASSERT(mapped.ok());
        state.ResumeTiming();
        benchmark::DoNotOptimize(
            mmu->access(GuestPhysAddr(gpa), kvm::Access::Exec));
        gpa += kHugePageSize;
    }
}
BENCHMARK(BM_EptDemotion);

void
BM_IoptMap(benchmark::State &state)
{
    World world;
    auto vfio = std::make_unique<iommu::VfioContainer>(
        *world.dram, *world.buddy, iommu::IommuConfig{}, 1);
    iommu::GroupId group = vfio->addGroup();
    uint64_t iova = 0;
    for (auto _ : state) {
        if (iova > 60_GiB) {
            state.PauseTiming();
            vfio = std::make_unique<iommu::VfioContainer>(
                *world.dram, *world.buddy, iommu::IommuConfig{}, 1);
            group = vfio->addGroup();
            iova = 0;
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(vfio->mapDma(
            group, IoVirtAddr(iova), HostPhysAddr(0x1000)));
        iova += kHugePageSize;
    }
}
BENCHMARK(BM_IoptMap);

void
BM_ScanCleanPage(benchmark::State &state)
{
    World world;
    world.dram->fillPage(1000, 0xabcd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(world.dram->scanPage(1000, 0xabcd));
    }
}
BENCHMARK(BM_ScanCleanPage);

} // namespace

BENCHMARK_MAIN();
