/**
 * @file
 * Clone-cost bench: deep world construction vs. CoW fork.
 *
 * The Monte-Carlo engine (orchestrator runAttempts) used to pay a full
 * world rebuild per trial; it now forks a pristine template in
 * O(pages the boot touches). This bench quantifies that win at the
 * Table 3 world size and gates it in CI:
 *
 *   deep  -- construct HostSystem(cfg) from scratch, per trial seed;
 *   fork  -- HostSystem::forkTrial(template, cfg), per trial seed.
 *
 * --verify additionally proves the identity the speedup rests on:
 * forkTrial() reproduces a freshly constructed world bit for bit
 * (saveState byte streams compared), and a CoW fork() of a booted
 * world is bitwise-equal to its source yet isolated from it. Run as a
 * tier-2 ctest.
 *
 * Emits BENCH_clone.json (see bench_json.h); tools/check_bench.py
 * fails CI when fork_speedup regresses >20% against the checked-in
 * baseline in bench/baselines/.
 */

#include <cstring>

#include "bench_common.h"
#include "bench_json.h"

using namespace hh;
using namespace hh::bench;

namespace {

std::vector<uint8_t>
worldBytes(const sys::HostSystem &host)
{
    base::ArchiveWriter w;
    host.saveState(w);
    return w.buffer();
}

sys::SystemConfig
worldConfig(const Options &opts)
{
    sys::SystemConfig cfg = presetByName("s1", opts);
    // Table 3 runs the full 16 GiB world; --quick shrinks it so the
    // tier-2 ctest and CI smoke stay fast.
    if (opts.hostBytes == 0 && opts.quick)
        cfg.withMemory(2_GiB);
    return cfg;
}

sys::SystemConfig
trialConfig(const sys::SystemConfig &cfg, uint64_t trial)
{
    // Exactly the orchestrator's per-trial derivation: only the host
    // seed changes; DRAM geometry and fault seed stay the template's.
    sys::SystemConfig trial_cfg = cfg;
    trial_cfg.seed = base::SeedSequence(cfg.seed).seed(trial);
    return trial_cfg;
}

/** 0 on success, 1 on any identity violation. */
int
verifyIdentity(const sys::SystemConfig &cfg)
{
    int failures = 0;
    const std::unique_ptr<const sys::HostSystem> tmpl =
        sys::HostSystem::makeForkTemplate(cfg);

    // forkTrial == fresh construction, for several trial seeds.
    for (uint64_t trial = 0; trial < 3; ++trial) {
        const sys::SystemConfig trial_cfg = trialConfig(cfg, trial);
        sys::HostSystem fresh(trial_cfg);
        const std::unique_ptr<sys::HostSystem> forked =
            sys::HostSystem::forkTrial(*tmpl, trial_cfg);
        if (worldBytes(fresh) != worldBytes(*forked)) {
            std::printf("FAIL trial %llu: forkTrial state differs "
                        "from fresh construction\n",
                        static_cast<unsigned long long>(trial));
            ++failures;
        }
    }

    // fork() of a booted world: bitwise-equal, then isolated.
    sys::HostSystem booted(cfg);
    booted.freezeMemory();
    const std::vector<uint8_t> before = worldBytes(booted);
    const std::unique_ptr<sys::HostSystem> forked = booted.fork();
    if (worldBytes(*forked) != before) {
        std::printf("FAIL fork() state differs from its source\n");
        ++failures;
    }
    forked->pageCacheChurn(8); // mutate the fork only
    if (worldBytes(booted) != before) {
        std::printf("FAIL mutating a fork changed its source\n");
        ++failures;
    }
    if (worldBytes(*forked) == before) {
        std::printf("FAIL mutating a fork did not change the fork\n");
        ++failures;
    }

    std::printf("verify: %s\n", failures ? "FAILED" : "ok");
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    bool verify = false;
    std::string out_path = "BENCH_clone.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verify") == 0)
            verify = true;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
    }

    const sys::SystemConfig cfg = worldConfig(opts);
    const double world_gib =
        static_cast<double>(cfg.dram.totalBytes) / (1_GiB);
    std::printf("== clone vs fork (%.1f GiB world) ==\n", world_gib);

    if (verify)
        return verifyIdentity(cfg);

    const unsigned deep_reps = opts.quick ? 2 : 3;
    const unsigned fork_reps = opts.quick ? 8 : 20;

    WallTimer template_timer;
    const std::unique_ptr<const sys::HostSystem> tmpl =
        sys::HostSystem::makeForkTemplate(cfg);
    const double template_seconds = template_timer.seconds();

    WallTimer deep_timer;
    for (uint64_t trial = 0; trial < deep_reps; ++trial)
        sys::HostSystem deep(trialConfig(cfg, trial));
    const double deep_per_world = deep_timer.seconds() / deep_reps;

    WallTimer fork_timer;
    for (uint64_t trial = 0; trial < fork_reps; ++trial) {
        const std::unique_ptr<sys::HostSystem> forked =
            sys::HostSystem::forkTrial(*tmpl, trialConfig(cfg, trial));
    }
    const double fork_per_world = fork_timer.seconds() / fork_reps;

    const double speedup =
        fork_per_world > 0 ? deep_per_world / fork_per_world : 0;
    std::printf("template build      %8.3f s\n", template_seconds);
    std::printf("deep construction   %8.3f s/world (%u reps)\n",
                deep_per_world, deep_reps);
    std::printf("CoW forkTrial       %8.3f s/world (%u reps)\n",
                fork_per_world, fork_reps);
    std::printf("fork speedup        %8.1fx\n", speedup);

    JsonReport report("bench_clone_fork");
    report.set("world_gib", world_gib);
    report.set("template_build_seconds", template_seconds);
    report.set("deep_seconds_per_world", deep_per_world);
    report.set("fork_seconds_per_world", fork_per_world);
    report.set("fork_speedup", speedup);
    report.set("deep_worlds_per_second",
               deep_per_world > 0 ? 1.0 / deep_per_world : 0.0);
    report.set("fork_worlds_per_second",
               fork_per_world > 0 ? 1.0 / fork_per_world : 0.0);
    report.set("peak_rss_bytes", peakRssBytes());
    report.set("deep_reps", static_cast<uint64_t>(deep_reps));
    report.set("fork_reps", static_cast<uint64_t>(fork_reps));
    if (!report.writeFile(out_path)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
