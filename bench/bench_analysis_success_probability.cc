/**
 * @file
 * Experiment E5 -- Section 5.3.1's analysis: the probability that a
 * successful flip yields access to an EPT page is roughly
 * VM size / (512 x host size).
 *
 * The bench validates the bound the way the analysis derives it: after
 * a full Page Steering pass it enumerates the EPT-page population and
 * Monte-Carlo samples hypothetical PFN-bit flips of sprayed EPTEs,
 * counting how often the post-flip frame is an EPT page. This isolates
 * the final lottery from the (orthogonal) flip-firing probability, and
 * sweeps the VM/host ratio to show the linear dependence the paper
 * predicts ("in more common scenarios, when the VM is allocated only a
 * small part of the physical memory, the expected success probability
 * can be much lower").
 */

#include <unordered_set>

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

void
runRatio(unsigned sixteenths, const Options &opts,
         analysis::TextTable &table)
{
    sys::SystemConfig cfg = presetByName("s1", opts);
    if (opts.hostBytes == 0)
        cfg.withMemory(opts.quick ? 2_GiB : 4_GiB);
    sys::HostSystem host(cfg);

    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = cfg.dram.totalBytes / 16;
    vm_cfg.virtioMemRegionSize = cfg.dram.totalBytes;
    vm_cfg.virtioMemPlugged =
        cfg.dram.totalBytes * (sixteenths - 1) / 16;
    auto machine = host.createVm(vm_cfg);

    attack::SteeringConfig steer_cfg;
    steer_cfg.exhaustMappings = scaledMappings(cfg);
    attack::PageSteering steering(*machine, host.clock(), steer_cfg);
    steering.exhaustNoisePages();
    steering.sprayEptes(machine->memorySize(), {});

    // The EPT-page population (host ground truth).
    std::unordered_set<uint64_t> ept_pages(
        machine->mmu().eptPageFrames().begin(),
        machine->mmu().eptPageFrames().end());
    const uint64_t total_frames = host.dram().pageCount();

    // Monte-Carlo over hypothetical exploitable flips: a random
    // sprayed EPTE's frame with one PFN bit (21..hi of the word)
    // toggled. Samples are split into fixed chunks, each drawing from
    // its own SeedSequence stream and reading the (now immutable)
    // post-steering host state, so --threads changes the wall clock
    // but never the estimate.
    const base::SeedSequence seq(base::mix64(opts.seed, sixteenths));
    const unsigned hi_bit = base::ceilLog2(cfg.dram.totalBytes) - 1;
    const auto &tables = machine->mmu().eptPageFrames();
    const uint64_t samples = 200'000;
    const uint64_t chunk_size = 10'000;
    const uint64_t chunks = samples / chunk_size;
    std::vector<uint64_t> chunk_hits(chunks, 0);
    base::parallelFor(chunks, opts.threads, [&](uint64_t chunk) {
        base::Rng rng = seq.stream(chunk);
        uint64_t local_hits = 0;
        for (uint64_t i = 0; i < chunk_size; ++i) {
            const Pfn table_page = tables[rng.below(tables.size())];
            const uint64_t entry = host.dram().backend().read64(
                HostPhysAddr(table_page * kPageSize
                             + rng.below(512) * 8));
            const kvm::EptEntry epte(entry);
            if (!epte.present())
                continue;
            const unsigned bit = static_cast<unsigned>(
                rng.between(21, hi_bit));
            const Pfn flipped =
                kvm::EptEntry(entry ^ (1ull << bit)).frame();
            if (flipped < total_frames && ept_pages.count(flipped))
                ++local_hits;
        }
        chunk_hits[chunk] = local_hits;
    });
    uint64_t hits = 0;
    for (uint64_t count : chunk_hits)
        hits += count;

    const double measured = static_cast<double>(hits) / samples;
    const double bound = static_cast<double>(machine->memorySize())
        / (512.0 * static_cast<double>(cfg.dram.totalBytes));
    table.addRow({
        std::to_string(sixteenths) + "/16 of host",
        analysis::formatCount(ept_pages.size()),
        analysis::formatDouble(measured * 100.0, 4) + "%",
        analysis::formatDouble(bound * 100.0, 4) + "%",
        analysis::formatDouble(measured / bound, 2) + "x",
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E5 / Section 5.3.1: P(flip lands on an EPT page) "
                "vs. the VM/(512 x host) bound ==\n");
    analysis::TextTable table({"VM size", "EPT pages",
                               "measured P", "bound VM/(512*host)",
                               "measured/bound"});
    for (unsigned sixteenths : {4u, 8u, 13u})
        runRatio(sixteenths, opts, table);
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper shape: the probability scales with the "
                "VM's share of host memory, tracking the VM/(512*host) "
                "bound within a small factor. Single-bit flips are "
                "nearest-neighbour draws rather than uniform ones, so "
                "small VMs can sit slightly above the bound while the "
                "paper's 13/16 setting sits just below it.\n");
    return 0;
}
