/**
 * @file
 * Experiment E8 -- Section 6 countermeasures:
 *
 *  1. the authors' QEMU quarantine patch: malicious unplug requests
 *     are NACKed (steering dies), legitimate resizes pass, and the
 *     stock driver's plug-failure retry trips the filter (the
 *     maintainer's objection that sank the patch);
 *  2. hardware mitigations (TRR, ECC) on otherwise identical DIMMs;
 *  3. disabling the NX-hugepage countermeasure (no iTLB-Multihit
 *     erratum): no demotions, nothing to steer -- but the machine
 *     check DoS returns.
 */

#include "bench_common.h"

using namespace hh;
using namespace hh::bench;

namespace {

sys::SystemConfig
hostConfig(const Options &opts)
{
    sys::SystemConfig cfg = presetByName("s1", opts);
    if (opts.hostBytes == 0)
        cfg.withMemory(2_GiB);
    cfg.dram.fault.weakCellsPerRow *= 4.0; // denser: faster signal
    return cfg;
}

void
quarantineRows(const Options &opts, analysis::TextTable &table)
{
    // Both rows run on identically configured hosts: fork one template
    // world per row instead of re-constructing it from scratch.
    const sys::SystemConfig cfg = hostConfig(opts);
    const std::unique_ptr<const sys::HostSystem> template_world =
        sys::HostSystem::makeForkTemplate(cfg);
    for (const bool quarantine : {false, true}) {
        const std::unique_ptr<sys::HostSystem> forked =
            sys::HostSystem::forkTrial(*template_world, cfg);
        sys::HostSystem &host = *forked;
        vm::VmConfig vm_cfg = paperVmConfig(host.config());
        vm_cfg.quarantine.enabled = quarantine;
        auto machine = host.createVm(vm_cfg);

        // Malicious voluntary unplugs (the steering step).
        machine->memDriver().setSuppressAutoPlug(true);
        unsigned released = 0;
        for (virtio::SubBlockId sb = 0; sb < 16; ++sb) {
            if (machine->memDriver()
                    .unplugSpecific(
                        machine->memDevice_().subBlockGpa(sb * 3))
                    .ok()) {
                ++released;
            }
        }

        // A legitimate hypervisor-initiated shrink.
        machine->memDriver().setSuppressAutoPlug(false);
        auto &device = machine->memDevice_();
        device.setRequestedSize(device.pluggedSize()
                                - 8 * kHugePageSize);
        const uint64_t converged = machine->memDriver().converge();

        // The stock driver's plug-failure recovery pattern, seen at
        // the device as an unplug while plugged < requested.
        device.setRequestedSize(device.pluggedSize()
                                + 8 * kHugePageSize);
        const virtio::SubBlockId spare = device.subBlockCount() - 1;
        // hh-lint: allow(status-discard) -- the plug is expected to fail; the recovery unplug below is what is measured
        (void)device.requestPlug(spare);
        const base::Status retry_unplug = device.requestUnplug(spare);

        table.addRow({
            quarantine ? "quarantine ON" : "quarantine OFF",
            std::to_string(released) + "/16",
            converged >= 8 ? "yes" : "NO",
            retry_unplug.ok() ? "accepted"
                              : "NACKed (false positive)",
        });
    }
}

void
mitigationRows(const Options &opts, analysis::TextTable &table)
{
    struct Variant
    {
        const char *name;
        bool trr, ecc, nx;
    };
    const Variant variants[] = {
        {"baseline (paper DIMMs)", false, false, true},
        {"TRR sampler (capacity 4)", true, false, true},
        {"ECC DIMM (SEC-DED)", false, true, true},
        {"no NX-hugepage countermeasure", false, false, false},
    };
    for (const Variant &variant : variants) {
        sys::SystemConfig cfg = hostConfig(opts);
        cfg.dram.trr.enabled = variant.trr;
        cfg.dram.ecc.enabled = variant.ecc;
        sys::HostSystem host(cfg);
        vm::VmConfig vm_cfg = paperVmConfig(cfg);
        vm_cfg.mmu.nxHugePages = variant.nx;
        auto machine = host.createVm(vm_cfg);

        // Profiling yield under this mitigation.
        attack::ProfilerConfig pcfg;
        pcfg.stopAfterExploitable = 4;
        attack::MemoryProfiler profiler(*machine, host.clock(),
                                        host.dram().mapping(), pcfg);
        const attack::ProfileResult profile =
            profiler.profile(profilableRegion(*machine));

        // EPT harvest under this mitigation.
        attack::PageSteering steering(*machine, host.clock(),
                                      attack::SteeringConfig{});
        const uint64_t demotions =
            steering.sprayEptes(64_MiB, {});

        // The DoS the NX countermeasure trades against.
        const base::Status mce = machine->mmu().execDuringPageSizeChange(
            GuestPhysAddr(2 * kHugePageSize));

        table.addRow({
            variant.name,
            analysis::formatCount(profile.totalFlips()),
            analysis::formatCount(demotions),
            mce.error() == base::ErrorCode::Fault
                ? "machine check (DoS)" : "safe",
        });
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);
    std::printf("== E8 / Section 6: countermeasures ==\n");

    std::printf("\n-- The authors' QEMU quarantine patch --\n");
    analysis::TextTable quarantine({"Config", "Malicious unplugs",
                                    "Legit resize works",
                                    "Plug-retry recovery"});
    quarantineRows(opts, quarantine);
    std::printf("%s", quarantine.render().c_str());
    std::printf("(the NACKed recovery row reproduces the maintainer "
                "objection that the patch breaks the stock driver's "
                "plug-failure handling)\n");

    std::printf("\n-- Hardware / hypervisor mitigation matrix --\n");
    analysis::TextTable mitigations(
        {"Variant", "Profiled flips", "EPT pages from 64 MiB spray",
         "Exec during page-size change"});
    mitigationRows(opts, mitigations);
    std::printf("%s", mitigations.render().c_str());
    std::printf("(no flips -> no profile; no demotions -> nothing to "
                "steer; but dropping the NX countermeasure revives "
                "the iTLB-Multihit DoS)\n");
    return 0;
}
