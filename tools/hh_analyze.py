#!/usr/bin/env python3
"""hh-analyze: HyperHammer's AST-grounded whole-program analyzer.

hh-lint (tools/hh_lint.py) polices the determinism contract with
line-level regexes; this tool carries the rules regexes cannot express
because they need structure: class layouts, function bodies, and the
whole-program call graph. It shares hh-lint's waiver syntax
(`// hh-lint: allow(rule) -- why`), the `[rules.*]` section of
.hh-lint.toml, the JSON report envelope (schema/tool/findings), and
the `--self-test` fixture harness.

Rules (see docs/static_analysis.md for the rationale):

  snapshot-field-coverage  every class declaring
                           saveState(ArchiveWriter&)/loadState must
                           serialize each of its persistent fields in
                           BOTH directions (or waive the field with a
                           justification) -- a silently skipped field
                           corrupts resume identity (DESIGN.md 3.4)
  determinism-taint        call paths from trial-outcome code
                           (src/attack, src/shard, src/analysis) that
                           reach std::random_device / rand / wall
                           clocks through wrappers the textual
                           raw-rand/wall-clock rules cannot see
  status-discard           a Status/Expected-returning call whose
                           result is dropped: `(void)` casts (which
                           defeat [[nodiscard]]), bare call
                           statements, and discards inside destructors
                           or catch blocks
  guarded-field-completeness
                           classes already using HH_GUARDED_BY must
                           not leave sibling mutable fields that are
                           touched from lambdas (the ThreadPool
                           callback shape) unannotated

Frontends:

  clang    libclang (clang.cindex, clang-18 bindings) driven by the
           compile_commands.json under --build-dir. Precise: sees
           through type aliases, macro expansion and overloads. This
           is what the CI `ast-analysis` leg runs.
  builtin  a bundled structural C++ parser (pure stdlib). Less
           precise on aliases but dependency-free, so the tier-1
           ctest gate runs everywhere. Both frontends feed the same
           rule engine and must agree on the fixtures (--self-test
           covers whichever is active).
  auto     clang when the bindings import, builtin otherwise.

Exit codes match hh-lint: 0 clean, 1 findings, 2 usage/config error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import hh_lint  # noqa: E402  (shared waiver/config/report machinery)

RULES = {
    "snapshot-field-coverage":
        "field of a snapshotted class is not serialized in both "
        "saveState() and loadState(); silent drift corrupts resume "
        "identity -- serialize it or waive the field with a "
        "justification",
    "determinism-taint":
        "trial-outcome code reaches non-deterministic randomness or a "
        "wall clock through this call chain; route it through "
        "base::Rng / base::SimClock",
    "status-discard":
        "Status/Expected result dropped; handle it or waive the "
        "discard with a justification",
    "guarded-field-completeness":
        "mutable field touched from a lambda while sibling fields are "
        "HH_GUARDED_BY-annotated; annotate it (or waive with the "
        "reason it needs no lock)",
}

RULE_IDS = {
    "snapshot-field-coverage": "HHA001",
    "determinism-taint": "HHA002",
    "status-discard": "HHA003",
    "guarded-field-completeness": "HHA004",
}

assert set(RULES) == set(hh_lint.ANALYZER_RULES), \
    "hh_lint.ANALYZER_RULES must mirror hh_analyze.RULES"

# Paths whose functions are never determinism-taint sources: the
# sanctioned randomness/time implementations themselves. Extended by
# [rules.determinism-taint] allow_paths in .hh-lint.toml.
DEFAULT_SANCTIONED = (
    "src/base/rng.h",
    "src/base/sim_clock.h",
    "src/base/sim_clock.cc",
    "bench/bench_json.h",
)

# Directories whose functions produce trial outcomes; a taint chain
# reaching them is a finding. Overridden by [analyze] taint_roots.
DEFAULT_TAINT_ROOTS = ("src/attack", "src/shard", "src/analysis")

C_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "case", "new", "delete", "throw", "goto", "alignof",
    "alignas", "decltype", "typeid", "noexcept", "static_assert",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "co_return", "co_await", "co_yield", "assert", "defined",
    "__attribute__", "requires", "operator",
}

SYNC_TYPE_RE = re.compile(
    r"\b(?:Mutex|MutexLock|CondVar|ThreadPool|thread|atomic|"
    r"condition_variable|once_flag|mutex)\b")

GUARD_MACRO_RE = re.compile(r"\bHH_(?:PT_)?GUARDED_BY\s*\(")

# `class X {`, `struct Y : Base {` -- but not `enum class`.
CLASS_RE = re.compile(
    r"(?<!enum )(?<!enum)\b(class|struct)\s+(\w+)"
    r"(?:\s+final)?\s*(?::[^;{=()]*)?\{")

OUT_OF_LINE_DEF_RE = re.compile(
    r"^(?:(\w+)\s*::\s*)?(~?\w+)\s*\(", re.MULTILINE)

LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?"
    r"(?:noexcept\b\s*)?(?:->\s*[^{;]{0,48}?)?\s*\{")

CATCH_RE = re.compile(r"\bcatch\s*\(")

CALL_RE = re.compile(
    r"(?:(\.|->)\s*)?(?<![\w.])((?:\w+\s*::\s*)*~?\w+)\s*\(")

VOID_CAST_RE = re.compile(r"^\(\s*void\s*\)\s*(.*)$", re.DOTALL)

STMT_SKIP_RE = re.compile(
    r"^(?:if|for|while|do|switch|case|break|continue|goto|else|try|"
    r"throw|return|using|co_return|co_await|delete)\b")

# Aggregated qualifiers/annotations that may trail a declarator.
FIELD_MACRO_RE = re.compile(r"\bHH_\w+\s*\(")
ATTR_RE = re.compile(r"\[\[[^\]]*\]\]")


def strip_templates(text):
    """Remove balanced <...> template argument lists (iteratively)."""
    prev = None
    while prev != text:
        prev = text
        text = re.sub(r"<[^<>]*>", " ", text)
    return text


def strip_calls(text, macro_re):
    """Blank out `NAME(...)` for every match of @p macro_re."""
    out = text
    while True:
        m = macro_re.search(out)
        if not m:
            return out
        close = hh_lint.find_matching(out, m.end() - 1, "(", ")")
        if close == -1:
            return out
        out = out[:m.start()] + " " * (close + 1 - m.start()) \
            + out[close + 1:]


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class Field:
    def __init__(self, name, line, decl_text):
        self.name = name
        self.line = line
        self.decl = decl_text
        cleaned = ATTR_RE.sub(" ", strip_calls(decl_text, FIELD_MACRO_RE))
        flat = strip_templates(cleaned)
        self.is_static = bool(re.search(r"\bstatic\b", flat))
        self.is_const = bool(re.match(
            r"\s*(?:static\s+)?(?:const|constexpr)\b", flat))
        # rfind: the field name may also appear inside a namespace
        # qualifier of the type (`dram::DramSystem &dram`).
        idx = flat.rfind(name)
        before_name = flat[:idx] if idx != -1 else flat
        self.is_ref = "&" in before_name
        self.is_ptr = "*" in before_name
        self.is_sync = bool(SYNC_TYPE_RE.search(flat))
        self.guarded = bool(GUARD_MACRO_RE.search(decl_text))
        self.is_atomic = bool(re.search(r"\batomic\b", flat))

    def persistent(self):
        """Fields the snapshot rule expects to round-trip: everything
        that is per-instance mutable state. References and raw
        pointers are constructor wiring (re-established on restore,
        not serializable), const members are construction-time
        configuration, sync primitives hold no logical state."""
        return not (self.is_static or self.is_ref or self.is_ptr
                    or self.is_const or self.is_sync)

    def lockable_state(self):
        """Fields the guarded-completeness rule cares about."""
        return not (self.is_static or self.is_const or self.is_ref
                    or self.is_sync or self.is_atomic or self.guarded)


class FuncDef:
    """One function definition (free function or member)."""

    def __init__(self, cls, name, path, rel, line, body, body_start,
                 params=""):
        self.cls = cls          # class name or None
        self.name = name
        self.path = path
        self.rel = rel
        self.line = line
        self.body = body        # stripped body text incl. braces
        self.body_start = body_start  # offset of '{' in file text
        self.params = params    # declarator text incl. parameter list
        self.calls = []         # (simple_name, qualifier, line, usr)
        self.tainted = None     # None/False or (witness_line, chain)
        self.direct_taint = None  # (line, primitive) or None
        self.usr = None         # clang only: unified symbol reference

    def key(self):
        return (self.rel, self.line, self.cls, self.name)

    def label(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


class ClassInfo:
    def __init__(self, name, path, rel, line):
        self.name = name
        self.path = path
        self.rel = rel
        self.line = line
        self.fields = []
        self.methods = {}       # name -> FuncDef (first definition)


class Program:
    """The whole-program IR both frontends produce and rules consume."""

    def __init__(self):
        self.classes = {}       # (rel, name) -> ClassInfo
        self.funcs = []         # [FuncDef]
        self.status_names = set()   # simple names returning Status/Expected
        # Per-class return classification: (class, method) pairs known
        # to return Status/Expected vs. known to return anything else.
        # `write64` returns Status on VirtualMachine but void on
        # MemoryBackend; the discard rule must not conflate them.
        self.status_methods = set()
        self.nonstatus_methods = set()
        self.waivers = {}       # rel -> {line -> set(rules)}
        self.files = {}         # rel -> stripped text

    def nonstatus_names(self):
        return {name for _, name in self.nonstatus_methods}

    def classes_by_name(self, name):
        return [c for (_, n), c in self.classes.items() if n == name]


def parse_waiver_map(raw):
    waivers, _ = hh_lint.parse_waivers(raw.splitlines())
    return waivers


def waived(program, rel, line, rule):
    return rule in program.waivers.get(rel, {}).get(line, set())


# --------------------------------------------------------------------------
# Builtin frontend: a structural parser over comment/string-stripped text.
# --------------------------------------------------------------------------

STATUS_RET_RE = re.compile(
    r"\b(?:base\s*::\s*)?(?:Status|StatusOr|Expected)\s+"
    r"(?:\w+\s*::\s*)?(\w+)\s*\(")


class BuiltinFrontend:
    name = "builtin"

    def __init__(self, repo_root):
        self.repo_root = repo_root

    def parse(self, files):
        program = Program()
        per_file = []
        for path in files:
            raw = path.read_text(errors="replace")
            stripped = hh_lint.strip_code(raw)
            rel = hh_lint.relpath(path, self.repo_root)
            program.waivers[rel] = parse_waiver_map(raw)
            program.files[rel] = stripped
            per_file.append((path, rel, stripped))
        for path, rel, stripped in per_file:
            self._collect_status_names(stripped, program)
        for path, rel, stripped in per_file:
            self._parse_file(path, rel, stripped, program)
        return program

    def _collect_status_names(self, stripped, program):
        flat = strip_templates(stripped)
        for m in STATUS_RET_RE.finditer(flat):
            program.status_names.add(m.group(1))

    def _parse_file(self, path, rel, stripped, program):
        class_spans = []
        for m in CLASS_RE.finditer(stripped):
            open_idx = m.end() - 1
            close = hh_lint.find_matching(stripped, open_idx, "{", "}")
            if close == -1:
                continue
            name = m.group(2)
            info = ClassInfo(name, path, rel, line_of(stripped, m.start()))
            self._parse_class_body(stripped, open_idx + 1, close, info,
                                   path, rel, program)
            program.classes.setdefault((rel, name), info)
            class_spans.append((open_idx, close))
        self._parse_out_of_line(stripped, class_spans, path, rel, program)

    def _parse_class_body(self, text, begin, end, info, path, rel,
                          program):
        """Walk one class body: fields and inline method definitions at
        the top nesting level (nested classes are found by the outer
        CLASS_RE pass and skipped here)."""
        i = begin
        stmt_start = begin
        while i < end:
            c = text[i]
            if c == "(":
                close = hh_lint.find_matching(text, i, "(", ")")
                i = (close if close != -1 else i) + 1
                continue
            if c == "{":
                close = hh_lint.find_matching(text, i, "{", "}")
                if close == -1:
                    return
                header = text[stmt_start:i]
                kind, name = self._classify_header(header)
                if kind == "func":
                    fn = FuncDef(info.name, name, path, rel,
                                 line_of(text, stmt_start),
                                 text[i:close + 1], i, params=header)
                    collect_calls(fn)
                    program.funcs.append(fn)
                    info.methods.setdefault(name, fn)
                    self._classify_return(header, name, info.name,
                                          program)
                    i = close + 1
                    stmt_start = i
                    continue
                if kind == "type":
                    # Nested class/struct/enum: its own CLASS_RE match
                    # handles fields; skip past `};`.
                    i = close + 1
                    while i < end and text[i] in " \t\n;":
                        i += 1
                    stmt_start = i
                    continue
                # Brace initializer: keep scanning to the ';'.
                i = close + 1
                continue
            if c == ";":
                stmt = text[stmt_start:i]
                field = self._parse_field(stmt, text, stmt_start)
                if field:
                    info.fields.append(field)
                else:
                    self._record_method_decl(stmt, info, program)
                stmt_start = i + 1
            i += 1

    @classmethod
    def _record_method_decl(cls, stmt, info, program):
        """Classify a body-less member declaration's return type so the
        status-discard rule can tell VirtualMachine::write64 (Status)
        from MemoryBackend::write64 (void)."""
        s = re.sub(r"\b(?:public|private|protected)\s*:", " ", stmt)
        s = ATTR_RE.sub(" ", s).strip()
        if re.match(r"^(?:using|typedef|friend|static_assert|template|"
                    r"enum|class|struct|union)\b", s) or "operator" in s:
            return
        flat = strip_templates(strip_calls(s, re.compile(
            r"\bHH_[A-Z_]+\s*\(")))
        m = re.search(r"([\w~]+)\s*\(", flat)
        if m is None or m.group(1) in C_KEYWORDS:
            return
        if "=" in flat[:m.start(1)]:
            return  # function-pointer initializer, not a declaration
        cls._classify_return(flat[:m.start(1)], m.group(1), info.name,
                             program)

    @staticmethod
    def _classify_return(ret_text, name, class_name, program):
        idx = ret_text.find(name)
        ret = ret_text[:idx] if idx != -1 else ret_text
        key = (class_name, name.lstrip("~"))
        if re.search(r"\b(?:Status|StatusOr|Expected)\b", ret):
            program.status_methods.add(key)
        else:
            program.nonstatus_methods.add(key)

    @staticmethod
    def _classify_header(header):
        h = re.sub(r"\b(?:public|private|protected)\s*:", " ", header)
        h = ATTR_RE.sub(" ", h).strip()
        if re.search(r"\b(?:class|struct|enum|union)\b", h):
            return "type", None
        flat = strip_templates(strip_calls(h, re.compile(
            r"\bHH_[A-Z_]+\s*\(")))
        if re.search(r"\boperator\b", flat):
            # operator()/operator== definitions: never called by name
            # textually, but the body must be consumed as a function
            # so the scan does not swallow the methods that follow.
            return "func", "operator"
        # The declarator's parameter list: the first '(' at depth 0;
        # the identifier before it names the function.
        m = re.search(r"([\w~]+)\s*\(", flat)
        if m and m.group(1) not in C_KEYWORDS:
            return "func", m.group(1)
        return "field", None

    @staticmethod
    def _parse_field(stmt, text, stmt_offset):
        s = re.sub(r"\b(?:public|private|protected)\s*:", " ", stmt)
        s = ATTR_RE.sub(" ", s)
        s_nomacro = strip_calls(s, FIELD_MACRO_RE)
        flat = strip_templates(s_nomacro)
        flat = re.sub(r"\{[^{}]*\}", " ", flat)
        flat = flat.split("=")[0]
        flat = re.sub(r"\[[^\[\]]*\]", " ", flat)
        head = flat.strip()
        if not head or re.match(
                r"^(?:using|typedef|friend|static_assert|template|"
                r"enum|class|struct|union|operator|explicit|virtual|"
                r"~)", head):
            return None
        if "(" in head or "operator" in head:
            return None  # declaration of a function / fn pointer
        idents = re.findall(r"[A-Za-z_]\w*", head)
        if len(idents) < 2:
            return None  # `int;`-style or a lone type mention
        name = idents[-1]
        if name in C_KEYWORDS or name in (
                "const", "constexpr", "static", "mutable", "volatile",
                "inline", "unsigned", "signed", "long", "short", "int",
                "char", "bool", "double", "float", "auto", "void",
                "struct", "class"):
            return None
        name_off = stmt.rfind(name)
        line = line_of(text, stmt_offset + max(name_off, 0))
        return Field(name, line, stmt)

    def _parse_out_of_line(self, text, class_spans, path, rel, program):
        """File-scope definitions: `Type Class::name(...) {` and free
        functions, in the repo's name-at-column-0 style."""
        for m in OUT_OF_LINE_DEF_RE.finditer(text):
            if any(b < m.start() < e for b, e in class_spans):
                continue
            cls, name = m.group(1), m.group(2)
            if name in C_KEYWORDS or (cls and cls in C_KEYWORDS):
                continue
            params_close = hh_lint.find_matching(text, m.end() - 1,
                                                 "(", ")")
            if params_close == -1:
                continue
            body_open = hh_lint.FUNC_BODY_OPEN_RE.match(
                text, params_close + 1)
            if body_open is None:
                continue
            body_close = hh_lint.find_matching(text, body_open.end() - 1,
                                               "{", "}")
            if body_close == -1:
                continue
            fn = FuncDef(cls, name.lstrip("~"), path, rel,
                         line_of(text, m.start()),
                         text[body_open.end() - 1:body_close + 1],
                         body_open.end() - 1,
                         params=text[m.start():params_close + 1])
            if name.startswith("~"):
                fn.name = "~" + fn.name
            collect_calls(fn)
            program.funcs.append(fn)


def collect_calls(fn):
    """Token-level call sites inside @p fn's body."""
    base = fn.body_start
    for m in CALL_RE.finditer(fn.body):
        full = re.sub(r"\s+", "", m.group(2))
        simple = full.split("::")[-1]
        if simple in C_KEYWORDS or not simple:
            continue
        if re.fullmatch(r"[A-Z_][A-Z0-9_]*", simple):
            continue  # macro-shaped
        qual = None
        if "::" in full:
            qual = full.rsplit("::", 1)[0]
        elif m.group(1):
            qual = "<member>"
        fn.calls.append((simple, qual, None, None, base + m.start()))


# --------------------------------------------------------------------------
# clang frontend: libclang over compile_commands.json.
# --------------------------------------------------------------------------

class ClangFrontend:
    name = "clang"

    def __init__(self, repo_root, build_dir, cindex):
        self.repo_root = repo_root
        self.build_dir = build_dir
        self.ci = cindex
        self.index = cindex.Index.create()
        self.cdb = None
        if build_dir is not None:
            try:
                self.cdb = cindex.CompilationDatabase.fromDirectory(
                    str(build_dir))
            except cindex.CompilationDatabaseError:
                self.cdb = None

    def _args_for(self, path):
        if self.cdb is None:
            return ["-std=c++20", "-x", "c++",
                    "-I" + str(self.repo_root / "src")]
        cmds = self.cdb.getCompileCommands(str(path))
        if not cmds:
            return ["-std=c++20", "-x", "c++",
                    "-I" + str(self.repo_root / "src")]
        args = list(cmds[0].arguments)[1:]
        # Drop the source file itself and -o/-c plumbing.
        cleaned, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c", "--output"):
                skip = a != "-c"
                continue
            if a == str(path) or a.endswith((".cc", ".cpp", ".o")):
                continue
            cleaned.append(a)
        return cleaned

    def parse(self, files):
        program = Program()
        seen_classes = set()
        seen_funcs = set()
        wanted = {}
        for path in files:
            rel = hh_lint.relpath(path, self.repo_root)
            raw = path.read_text(errors="replace")
            program.waivers[rel] = parse_waiver_map(raw)
            program.files[rel] = hh_lint.strip_code(raw)
            wanted[str(path.resolve())] = rel
        # Parse translation units (.cc); headers ride along. A header
        # no TU includes is parsed standalone so fixtures and orphan
        # headers still get coverage.
        covered = set()
        order = sorted(wanted, key=lambda p: (not p.endswith((".cc",
                                                              ".cpp")), p))
        for abspath in order:
            if abspath in covered and abspath.endswith((".h", ".hh")):
                continue
            try:
                tu = self.index.parse(
                    abspath, args=self._args_for(Path(abspath)),
                    options=self.ci.TranslationUnit
                    .PARSE_DETAILED_PROCESSING_RECORD)
            except self.ci.TranslationUnitLoadError:
                continue
            self._walk_tu(tu, wanted, covered, seen_classes, seen_funcs,
                          program)
        return program

    def _loc_rel(self, cursor, wanted):
        loc = cursor.location
        if loc.file is None:
            return None
        return wanted.get(str(Path(loc.file.name).resolve()))

    def _walk_tu(self, tu, wanted, covered, seen_classes, seen_funcs,
                 program):
        ci = self.ci
        ck = ci.CursorKind
        for cursor in tu.cursor.walk_preorder():
            rel = self._loc_rel(cursor, wanted)
            if rel is None:
                continue
            covered.add(str(Path(cursor.location.file.name).resolve()))
            if cursor.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) \
                    and cursor.is_definition():
                key = (rel, cursor.spelling, cursor.location.line)
                if key in seen_classes:
                    continue
                seen_classes.add(key)
                self._record_class(cursor, rel, program)
            elif cursor.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL,
                                 ck.CONSTRUCTOR, ck.DESTRUCTOR) \
                    and cursor.is_definition():
                key = (rel, cursor.location.line, cursor.spelling)
                if key in seen_funcs:
                    continue
                seen_funcs.add(key)
                self._record_func(cursor, rel, program)
            elif cursor.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL):
                self._note_status_name(cursor, program)

    def _note_status_name(self, cursor, program):
        result = strip_templates(cursor.result_type.spelling)
        is_status = bool(
            re.search(r"\b(?:Status|StatusOr|Expected)\b", result))
        if is_status:
            program.status_names.add(cursor.spelling)
        parent = cursor.semantic_parent
        ck = self.ci.CursorKind
        if parent is not None and parent.kind in (ck.CLASS_DECL,
                                                  ck.STRUCT_DECL):
            key = (parent.spelling, cursor.spelling)
            (program.status_methods if is_status
             else program.nonstatus_methods).add(key)

    def _record_class(self, cursor, rel, program):
        ck = self.ci.CursorKind
        info = program.classes.setdefault(
            (rel, cursor.spelling),
            ClassInfo(cursor.spelling, Path(cursor.location.file.name),
                      rel, cursor.location.line))
        for child in cursor.get_children():
            if child.kind != ck.FIELD_DECL:
                continue
            decl_text = " ".join(t.spelling for t in child.get_tokens())
            field = Field(child.spelling, child.location.line,
                          decl_text or child.spelling)
            # Prefer the AST's type facts over the textual guesses.
            tk = self.ci.TypeKind
            field.is_ref = child.type.kind in (tk.LVALUEREFERENCE,
                                               tk.RVALUEREFERENCE)
            field.is_ptr = child.type.kind == tk.POINTER
            field.is_const = child.type.is_const_qualified()
            spelled = child.type.spelling
            field.is_sync = bool(SYNC_TYPE_RE.search(spelled))
            field.is_atomic = "atomic" in spelled
            if not field.guarded:
                field.guarded = bool(GUARD_MACRO_RE.search(decl_text)) \
                    or "guarded_by" in decl_text
            info.fields.append(field)

    def _record_func(self, cursor, rel, program):
        self._note_status_name(cursor, program)
        parent = cursor.semantic_parent
        ck = self.ci.CursorKind
        cls = parent.spelling if parent is not None and parent.kind in (
            ck.CLASS_DECL, ck.STRUCT_DECL) else None
        stripped = program.files.get(rel, "")
        extent = cursor.extent
        body_open = stripped.find("{", self._offset(extent.start,
                                                    stripped))
        if body_open == -1:
            return
        body_close = hh_lint.find_matching(stripped, body_open, "{", "}")
        if body_close == -1:
            return
        try:
            params = ", ".join(a.type.spelling
                               for a in cursor.get_arguments())
        except Exception:
            params = ""
        fn = FuncDef(cls, cursor.spelling, Path(cursor.location.file.name),
                     rel, cursor.location.line,
                     stripped[body_open:body_close + 1], body_open,
                     params=params)
        fn.usr = cursor.get_usr()
        self._collect_ast_calls(cursor, fn)
        collect_calls(fn)   # textual calls keep line-level witnesses
        program.funcs.append(fn)

    @staticmethod
    def _offset(source_location, stripped):
        # libclang offsets are byte offsets into the raw file; the
        # stripped text preserves layout, so they line up.
        return min(source_location.offset, len(stripped))

    def _collect_ast_calls(self, cursor, fn):
        ck = self.ci.CursorKind
        for node in cursor.walk_preorder():
            if node.kind != ck.CALL_EXPR:
                continue
            ref = node.referenced
            if ref is None:
                continue
            fn.calls.append((ref.spelling, None, node.location.line,
                             ref.get_usr(), None))


# --------------------------------------------------------------------------
# Rules over the Program IR.
# --------------------------------------------------------------------------

def reachable_class_body(info, entry):
    """@p entry's body plus the bodies of every same-class method it
    (transitively) calls: saveState() is allowed to serialize a field
    through a helper like mergedPfns()."""
    parts = []
    seen = set()
    stack = [entry]
    while stack:
        fn = stack.pop()
        if fn.name in seen:
            continue
        seen.add(fn.name)
        parts.append(fn.body)
        for call in fn.calls:
            callee = info.methods.get(call[0])
            if callee is not None and call[0] not in seen:
                stack.append(callee)
    return "\n".join(parts)


def rule_snapshot_field_coverage(program, ctx, findings):
    rule = "snapshot-field-coverage"
    for (rel, _), info in sorted(program.classes.items()):
        if not ctx.enabled(rule, rel):
            continue
        save = info.methods.get("saveState")
        load = info.methods.get("loadState")
        if save is None or load is None:
            continue
        if "ArchiveWriter" not in save.params:
            continue  # e.g. Rng::saveState(): raw state by value,
            #           not the snapshot archive protocol
        save_body = reachable_class_body(info, save)
        load_body = reachable_class_body(info, load)
        for field in info.fields:
            if not field.persistent():
                continue
            if waived(program, rel, field.line, rule):
                continue
            name_re = re.compile(r"\b%s\b" % re.escape(field.name))
            in_save = bool(name_re.search(save_body))
            in_load = bool(name_re.search(load_body))
            if in_save and in_load:
                continue
            if not in_save and not in_load:
                what = "is never serialized"
            elif in_save:
                what = ("is written by saveState() but never restored "
                        "by loadState()")
            else:
                what = ("is restored by loadState() but never written "
                        "by saveState()")
            findings.append(hh_lint.Finding(
                rel, field.line, rule,
                f"field '{info.name}::{field.name}' {what}; resume "
                "identity silently drifts -- serialize it in both "
                "directions or waive the field with a justification"))


def build_taint(program, ctx):
    """Propagate determinism taint backwards over the call graph.

    Sources are bodies matching hh-lint's raw-rand/wall-clock regexes
    outside sanctioned files. Name-resolved edges only taint a caller
    when *every* same-name candidate is tainted (or the name is
    unique), so simple-name collisions under-approximate instead of
    spraying false positives; the clang frontend adds exact USR edges
    on top.
    """
    by_name = {}
    by_usr = {}
    for fn in program.funcs:
        by_name.setdefault(fn.name, []).append(fn)
        if fn.usr:
            by_usr[fn.usr] = fn
    for fn in program.funcs:
        if ctx.sanctioned(fn.rel):
            fn.tainted = False
            continue
        hit = hh_lint.RAW_RAND_RE.search(fn.body)
        primitive = "raw randomness"
        if hit is None:
            hit = hh_lint.WALL_CLOCK_RE.search(fn.body)
            primitive = "a wall clock"
        if hit is not None:
            line = line_of(program.files[fn.rel],
                           fn.body_start + hit.start())
            if not waived(program, fn.rel, line, "determinism-taint"):
                fn.direct_taint = (line, primitive,
                                   hit.group(0).strip(" ("))

    def candidates(call, caller):
        simple, qual, _line, usr, _off = call
        if usr is not None:
            hit = by_usr.get(usr)
            return [hit] if hit else []
        defs = by_name.get(simple, [])
        if not defs:
            return []
        if qual and qual not in ("<member>",):
            scoped = [d for d in defs if d.cls == qual.split("::")[-1]]
            if scoped:
                return scoped
        if qual == "<member>":
            scoped = [d for d in defs if d.cls]
            return scoped
        return defs

    tainted = {fn.key(): bool(fn.direct_taint) for fn in program.funcs}
    chain = {fn.key(): (fn.direct_taint[0],
                        f"uses {fn.direct_taint[1]} "
                        f"('{fn.direct_taint[2]}', line "
                        f"{fn.direct_taint[0]})")
             for fn in program.funcs if fn.direct_taint}
    changed = True
    while changed:
        changed = False
        for fn in program.funcs:
            if tainted[fn.key()] or fn.tainted is False:
                continue
            for call in fn.calls:
                defs = candidates(call, fn)
                if not defs:
                    continue
                if not all(tainted.get(d.key()) for d in defs):
                    continue
                witness = defs[0]
                if call[2] is not None:
                    line = call[2]
                else:
                    line = line_of(program.files[fn.rel], call[4])
                if waived(program, fn.rel, line, "determinism-taint"):
                    continue
                tainted[fn.key()] = True
                sub = chain.get(witness.key(), (0, "is tainted"))[1]
                chain[fn.key()] = (
                    line, f"calls '{witness.label()}' "
                          f"({witness.rel}:{witness.line}), which {sub}")
                changed = True
                break
    return tainted, chain


def rule_determinism_taint(program, ctx, findings):
    rule = "determinism-taint"
    tainted, chain = build_taint(program, ctx)
    for fn in sorted(program.funcs, key=FuncDef.key):
        if not tainted.get(fn.key()):
            continue
        if not ctx.in_taint_root(fn.rel) or not ctx.enabled(rule, fn.rel):
            continue
        line, why = chain[fn.key()]
        if waived(program, fn.rel, line, rule) \
                or waived(program, fn.rel, fn.line, rule):
            continue
        findings.append(hh_lint.Finding(
            fn.rel, line, rule,
            f"trial-outcome function '{fn.label()}' {why}; "
            "non-determinism here breaks bitwise trial identity -- "
            "route it through base::Rng / base::SimClock"))


def iter_statements(body):
    """Yield (offset, text) for each statement inside a brace body,
    recursing into nested blocks. Parenthesized regions (for-headers,
    argument lists) never split a statement."""
    i = 1 if body.startswith("{") else 0
    end = len(body) - 1 if body.endswith("}") else len(body)
    start = i
    while i < end:
        c = body[i]
        if c == "(":
            close = hh_lint.find_matching(body, i, "(", ")")
            i = (close if close != -1 else i) + 1
            continue
        if c == "{":
            close = hh_lint.find_matching(body, i, "{", "}")
            if close == -1:
                break
            inner = body[i:close + 1]
            for off, stmt in iter_statements(inner):
                yield i + off, stmt
            i = close + 1
            start = i
            continue
        if c == ";":
            yield start, body[start:i]
            start = i + 1
        i += 1


CALL_STMT_RE = re.compile(
    r"^\s*((?:[\w:\]\[]+(?:\s*(?:\.|->)\s*))*)((?:\w+\s*::\s*)*\w+)\s*\(")


def discard_callee(stmt):
    """(callee, kind, receiver) when @p stmt is a bare discarded call
    (optionally under a `(void)` cast), else (None, None, None).

    receiver is None for unqualified calls, ("var", name) for a
    single-step `name.` / `name->` prefix, ("type", Name) for a
    `Name::callee` qualifier, and ("opaque", None) for chains the
    textual frontend cannot type."""
    s = stmt.strip()
    kind = "stmt"
    m = VOID_CAST_RE.match(s)
    if m:
        s = m.group(1).strip()
        kind = "void-cast"
    if not s or STMT_SKIP_RE.match(s):
        return None, None, None
    m = CALL_STMT_RE.match(s)
    if m is None:
        return None, None, None
    if "=" in s[:m.start(2)]:
        return None, None, None
    full = re.sub(r"\s+", "", m.group(2))
    if full.startswith("std::"):
        return None, None, None
    open_idx = s.find("(", m.end(2) - 1)
    close = hh_lint.find_matching(s, open_idx, "(", ")")
    if close == -1 or s[close + 1:].strip():
        return None, None, None  # assignment/chain/comparison
    simple = full.split("::")[-1]
    if simple in C_KEYWORDS or re.fullmatch(r"[A-Z_][A-Z0-9_]*", simple):
        return None, None, None
    receiver = None
    if "::" in full:
        receiver = ("type", full.rsplit("::", 2)[-2])
    elif m.group(1):
        links = re.findall(r"([\w:\]\[]+)\s*(?:\.|->)", m.group(1))
        if len(links) == 1 and re.fullmatch(r"[A-Za-z_]\w*", links[0]):
            receiver = ("var", links[0])
        else:
            receiver = ("opaque", None)
    return simple, kind, receiver


TYPE_OF_VAR_TMPL = (r"\b([A-Za-z_]\w*)(?:\s*<[^<>]*>)?"
                    r"(?:[\s&*]|\bconst\b)+%s\b")


def resolve_receiver_type(recv, fn, program, class_names):
    """Best-effort static type of a receiver variable: a declaration in
    the parameter list or body, else a same-named field of the
    enclosing class. None when unresolvable (auto, chains, ...)."""
    scope = fn.params + "\n" + fn.body
    resolved = None
    for m in re.finditer(TYPE_OF_VAR_TMPL % re.escape(recv), scope):
        if m.group(1) in class_names:
            resolved = m.group(1)
    if resolved:
        return resolved
    if fn.cls:
        for info in program.classes_by_name(fn.cls):
            for field in info.fields:
                if field.name != recv:
                    continue
                for ident in re.findall(r"[A-Za-z_]\w*", field.decl):
                    if ident in class_names:
                        return ident
    return None


def returns_status(callee, receiver, fn, program, class_names,
                   nonstatus_any):
    """Does this call site return Status/Expected? Resolution order:
    exact (class, method) facts when the receiver types, then the
    enclosing class for unqualified calls, then the whole-program
    simple-name fallback -- which only fires when every declaration of
    that name agrees, so the ambiguous write64/fillPage pairs are
    under- rather than over-approximated."""
    cls = None
    if receiver is not None:
        rkind, rname = receiver
        if rkind == "type":
            cls = rname
        elif rkind == "var":
            cls = resolve_receiver_type(rname, fn, program, class_names)
    elif fn.cls:
        cls = fn.cls
    if cls is not None:
        if (cls, callee) in program.status_methods:
            return True
        if (cls, callee) in program.nonstatus_methods:
            return False
    return callee in program.status_names and callee not in nonstatus_any


def rule_status_discard(program, ctx, findings):
    rule = "status-discard"
    class_names = {name for _, name in program.classes}
    nonstatus_any = program.nonstatus_names()
    for fn in sorted(program.funcs, key=FuncDef.key):
        if not ctx.enabled(rule, fn.rel):
            continue
        catch_spans = []
        for m in CATCH_RE.finditer(fn.body):
            params_close = hh_lint.find_matching(fn.body, fn.body.find(
                "(", m.start()), "(", ")")
            if params_close == -1:
                continue
            block_open = fn.body.find("{", params_close)
            if block_open == -1:
                continue
            block_close = hh_lint.find_matching(fn.body, block_open,
                                                "{", "}")
            if block_close != -1:
                catch_spans.append((block_open, block_close))
        in_dtor = fn.name.startswith("~")
        for off, stmt in iter_statements(fn.body):
            callee, kind, receiver = discard_callee(stmt)
            if callee is None:
                continue
            if not returns_status(callee, receiver, fn, program,
                                  class_names, nonstatus_any):
                continue
            line = line_of(program.files[fn.rel], fn.body_start + off
                           + (len(stmt) - len(stmt.lstrip())))
            if waived(program, fn.rel, line, rule):
                continue
            in_catch = any(b <= off <= e for b, e in catch_spans)
            if in_dtor:
                where = (f"in destructor '{fn.label()}' -- a failure "
                         "here disappears silently")
            elif in_catch:
                where = ("inside a catch block -- the recovery path "
                         "swallows a second failure")
            elif kind == "void-cast":
                where = ("via a (void) cast, which defeats "
                         "[[nodiscard]]")
            else:
                where = "as a bare statement"
            findings.append(hh_lint.Finding(
                fn.rel, line, rule,
                f"result of Status/Expected-returning '{callee}()' is "
                f"discarded {where}; handle it or waive the discard "
                "with a justification"))


def rule_guarded_field_completeness(program, ctx, findings):
    rule = "guarded-field-completeness"
    for (rel, _), info in sorted(program.classes.items()):
        if not ctx.enabled(rule, rel):
            continue
        if not any(f.guarded for f in info.fields):
            continue
        lambda_bodies = []
        for fn in info.methods.values():
            for m in LAMBDA_RE.finditer(fn.body):
                open_idx = m.end() - 1
                close = hh_lint.find_matching(fn.body, open_idx,
                                              "{", "}")
                if close != -1:
                    lambda_bodies.append(fn.body[open_idx:close + 1])
        if not lambda_bodies:
            continue
        for field in info.fields:
            if not field.lockable_state():
                continue
            if waived(program, rel, field.line, rule):
                continue
            name_re = re.compile(r"\b%s\b" % re.escape(field.name))
            if not any(name_re.search(b) for b in lambda_bodies):
                continue
            findings.append(hh_lint.Finding(
                rel, field.line, rule,
                f"field '{info.name}::{field.name}' is touched from a "
                "lambda (the ThreadPool-callback shape) but has no "
                "HH_GUARDED_BY while sibling fields are annotated; "
                "annotate it or waive with the reason it needs no "
                "lock"))


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

class RuleContext:
    def __init__(self, allow, taint_roots, sanctioned):
        self.allow = allow
        self.taint_roots = tuple(taint_roots)
        self.sanctioned_paths = tuple(sanctioned)

    def enabled(self, rule, rel):
        return not any(rel.startswith(p)
                       for p in self.allow.get(rule, []))

    def in_taint_root(self, rel):
        return any(rel.startswith(r) for r in self.taint_roots)

    def sanctioned(self, rel):
        return any(rel.startswith(p) for p in self.sanctioned_paths)


def load_analyze_config(config_path):
    """hh-lint's config plus the [analyze] section."""
    config = hh_lint.load_config(config_path)
    config.setdefault("taint_roots", list(DEFAULT_TAINT_ROOTS))
    config.setdefault("analyze_roots", None)
    config.setdefault("analyze_exclude", [])
    if config_path is None or hh_lint.tomllib is None:
        return config
    try:
        data = hh_lint.tomllib.loads(Path(config_path).read_text())
    except (OSError, hh_lint.tomllib.TOMLDecodeError):
        return config
    analyze = data.get("analyze", {})
    if "taint_roots" in analyze:
        config["taint_roots"] = list(analyze["taint_roots"])
    if "roots" in analyze:
        config["analyze_roots"] = list(analyze["roots"])
    if "exclude" in analyze:
        config["analyze_exclude"] = list(analyze["exclude"])
    return config


def make_frontend(kind, repo_root, build_dir):
    """Returns (frontend, error). `auto` degrades to builtin."""
    if kind in ("clang", "auto"):
        try:
            import clang.cindex as cindex
        except ModuleNotFoundError:
            if kind == "clang":
                return None, ("clang frontend requested but the "
                              "clang.cindex Python bindings are not "
                              "installed (apt: python3-clang-18 + "
                              "libclang-18-dev)")
            return BuiltinFrontend(repo_root), None
        if build_dir is not None:
            ccj = Path(build_dir) / "compile_commands.json"
            if not ccj.exists() and kind == "clang":
                return None, (
                    f"no compile_commands.json under '{build_dir}'; "
                    "configure with cmake -B <build-dir> (the "
                    "top-level CMakeLists exports it) or pass "
                    "--build-dir pointing at a configured build tree")
        try:
            return ClangFrontend(repo_root, build_dir, cindex), None
        except Exception as err:  # libclang .so missing/mismatched
            if kind == "clang":
                return None, f"cannot initialize libclang: {err}"
            return BuiltinFrontend(repo_root), None
    return BuiltinFrontend(repo_root), None


def link_methods(program):
    """Attach out-of-line member definitions to their classes. Runs
    after every file is parsed so a .cc sorting before its header (or a
    method defined in another TU) still lands on the class."""
    for fn in program.funcs:
        if not fn.cls:
            continue
        for info in program.classes_by_name(fn.cls):
            info.methods.setdefault(fn.name, fn)


def run_rules(program, ctx):
    link_methods(program)
    findings = []
    rule_snapshot_field_coverage(program, ctx, findings)
    rule_determinism_taint(program, ctx, findings)
    rule_status_discard(program, ctx, findings)
    rule_guarded_field_completeness(program, ctx, findings)
    # Both frontends can discover the same entity twice (a header in
    # two TUs); findings are identity-keyed, so dedupe before sorting.
    unique = {f.key(): f for f in findings}
    return sorted(unique.values(), key=hh_lint.Finding.key)


def analyze(paths, config, repo_root, frontend):
    files = list(hh_lint.iter_files(paths, config, repo_root))
    program = frontend.parse(files)
    sanctioned = set(DEFAULT_SANCTIONED)
    sanctioned.update(config["allow"].get("raw-rand", []))
    sanctioned.update(config["allow"].get("wall-clock", []))
    sanctioned.update(config["allow"].get("determinism-taint", []))
    ctx = RuleContext(config["allow"], config["taint_roots"], sanctioned)
    return run_rules(program, ctx)


def self_test(fixture_dir, repo_root, frontend_kind):
    """hh-lint's fixture harness over the analyzer rules: every
    `// expect: <rule>` marker must fire, nothing else may, and every
    rule needs at least one fixture."""
    frontend, err = make_frontend(frontend_kind, repo_root, None)
    if err:
        print(f"hh-analyze: {err}", file=sys.stderr)
        return 2
    config = {"roots": [], "extensions": [".h", ".hh", ".cc", ".cpp"],
              "exclude": [], "allow": {},
              "taint_roots": [""]}  # every fixture is trial-outcome code
    expected = set()
    for f in hh_lint.iter_files([fixture_dir], config, repo_root):
        rel = hh_lint.relpath(f, repo_root)
        for lineno, line in enumerate(
                f.read_text(errors="replace").splitlines(), start=1):
            m = hh_lint.EXPECT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    rule = rule.strip()
                    if rule not in RULES:
                        print(f"self-test: {rel}:{lineno} names unknown "
                              f"rule '{rule}'", file=sys.stderr)
                        return 2
                    expected.add((rel, lineno, rule))
    actual = {f.key()
              for f in analyze([fixture_dir], config, repo_root, frontend)}
    missing = expected - actual
    surprise = actual - expected
    for path, line, rule in sorted(missing):
        print(f"self-test: MISSING  {path}:{line}: [{rule}] did not fire")
    for path, line, rule in sorted(surprise):
        print(f"self-test: SURPRISE {path}:{line}: [{rule}] fired "
              "without an // expect marker")
    uncovered = set(RULES) - {rule for _, _, rule in expected}
    for rule in sorted(uncovered):
        print(f"self-test: UNCOVERED rule [{rule}] has no fixture")
    if missing or surprise or uncovered:
        return 1
    print(f"self-test: ok ({len(expected)} expectations, all "
          f"{len(RULES)} rules covered, {frontend.name} frontend)")
    return 0


def sarif_payload(findings):
    """Minimal SARIF 2.1.0 for code-scanning upload/artifact review."""
    rules = [{"id": RULE_IDS[rule],
              "name": rule,
              "shortDescription": {"text": rule},
              "fullDescription": {"text": RULES[rule]}}
             for rule in sorted(RULES)]
    results = [{
        "ruleId": RULE_IDS.get(f.rule, "HHX000"),
        "level": "error",
        "message": {"text": f.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": f.line},
            },
        }],
    } for f in findings]
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "hh-analyze",
                "informationUri":
                    "https://github.com/hyperhammer/hyperhammer",
                "rules": rules,
            }},
            "results": results,
        }],
    }


def main(argv):
    parser = argparse.ArgumentParser(prog="hh-analyze",
                                     description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to analyze (default: [analyze] "
                             "roots, falling back to [lint] roots)")
    parser.add_argument("--config", default=None,
                        help="path to .hh-lint.toml")
    parser.add_argument("--build-dir", default=None,
                        help="CMake build tree holding "
                             "compile_commands.json (clang frontend)")
    parser.add_argument("--frontend", choices=("auto", "clang", "builtin"),
                        default="auto")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--report", default=None,
                        help="write the shared JSON report here")
    parser.add_argument("--sarif", default=None,
                        help="also write a SARIF 2.1.0 report here")
    parser.add_argument("--self-test", metavar="FIXTURE_DIR",
                        help="run the rule fixtures instead of analyzing")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent

    if args.list_rules:
        for rule, message in RULES.items():
            print(f"{rule} ({RULE_IDS[rule]}): {message}")
        return 0

    if args.self_test:
        return self_test(Path(args.self_test), repo_root, args.frontend)

    config_path = args.config
    if config_path is None:
        default = repo_root / ".hh-lint.toml"
        config_path = default if default.exists() else None
    config = load_analyze_config(config_path)
    config["exclude"] = list(config["exclude"]) \
        + list(config["analyze_exclude"])

    build_dir = args.build_dir
    if build_dir is None:
        default_build = repo_root / "build"
        if (default_build / "compile_commands.json").exists():
            build_dir = default_build
    frontend, err = make_frontend(args.frontend, repo_root, build_dir)
    if err:
        print(f"hh-analyze: {err}", file=sys.stderr)
        return 2

    roots = config["analyze_roots"] or config["roots"]
    paths = args.paths or [repo_root / r for r in roots]
    findings = analyze(paths, config, repo_root, frontend)

    payload = hh_lint.report_payload("hh-analyze", findings, RULE_IDS)
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for f in findings:
            print(f)
        print(f"hh-analyze: {len(findings)} finding(s) "
              f"({frontend.name} frontend)")
    if args.report:
        Path(args.report).write_text(json.dumps(payload, indent=2) + "\n")
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(sarif_payload(findings), indent=2) + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
