#!/usr/bin/env python3
"""Golden-trace regression check for the experiment benches.

Runs each configured bench at a pinned configuration (seed=1, 1 GiB
host, --quick) and diffs its stdout against the checked-in trace in
tests/golden/. The simulator is bitwise-deterministic for a fixed seed,
so any diff is a behaviour change that must be either fixed or
explicitly re-baselined with --update.

Usage:
    check_golden.py --bench-dir <dir-with-bench-binaries> [--update]

Exit status: 0 when every trace matches (or was updated), 1 on any
mismatch or bench failure.
"""

import argparse
import difflib
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

# Pinned flags: small host, fixed seed, reduced workload. The golden
# files record exactly this configuration; keep the two in sync.
PINNED_FLAGS = ["--host-gib=1", "--seed=1", "--quick"]

# (bench binary, golden file) pairs. E1 covers profiling end to end
# (DRAM model, mapping, profiler); E3 covers steering (virtio-mem,
# buddy placement, EPT spray).
TRACES = [
    ("bench_table1_profiling", "e1_profiling_seed1.txt"),
    ("bench_table2_page_steering", "e3_page_steering_seed1.txt"),
]


def run_bench(bench_dir: pathlib.Path, name: str) -> str:
    exe = bench_dir / name
    if not exe.exists():
        sys.exit(f"error: bench binary not found: {exe}")
    result = subprocess.run(
        [str(exe), *PINNED_FLAGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,  # warn/info logs are not golden
        text=True,
        timeout=600,
    )
    if result.returncode != 0:
        sys.exit(f"error: {name} exited with {result.returncode}")
    return result.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True, type=pathlib.Path,
                        help="directory holding the bench binaries")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden files instead of diffing")
    args = parser.parse_args()

    failures = 0
    for bench, golden_name in TRACES:
        actual = run_bench(args.bench_dir, bench)
        golden_path = GOLDEN_DIR / golden_name
        if args.update:
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(actual)
            print(f"updated {golden_path.relative_to(REPO_ROOT)}")
            continue
        if not golden_path.exists():
            print(f"FAIL {bench}: missing golden file {golden_path}; "
                  f"run with --update to create it")
            failures += 1
            continue
        expected = golden_path.read_text()
        if actual == expected:
            print(f"ok   {bench} matches {golden_name}")
            continue
        failures += 1
        print(f"FAIL {bench}: output differs from {golden_name}")
        diff = difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{golden_name}",
            tofile=f"{bench} (current)",
        )
        sys.stdout.writelines(diff)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
