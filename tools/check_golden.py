#!/usr/bin/env python3
"""Golden-trace regression check for the experiment benches.

Runs each configured bench at a pinned configuration (seed=1, 1 GiB
host, --quick) and diffs its stdout against the checked-in trace in
tests/golden/. The simulator is bitwise-deterministic for a fixed seed,
so any diff is a behaviour change that must be either fixed or
explicitly re-baselined with --update.

Usage:
    check_golden.py --bench-dir <dir-with-bench-binaries> [--update]
                    [--diff-file <path>]

On a mismatch the unified diff goes to stdout, to --diff-file when
given (so CI can upload it as an artifact), and -- when running under
GitHub Actions -- into the job summary ($GITHUB_STEP_SUMMARY), so the
divergence is readable without digging through raw logs.

Exit status: 0 when every trace matches (or was updated), 1 on any
mismatch or bench failure.
"""

import argparse
import difflib
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

# Pinned flags: small host, fixed seed, reduced workload. The golden
# files record exactly this configuration; keep the two in sync.
PINNED_FLAGS = ["--host-gib=1", "--seed=1", "--quick"]

# (bench binary, golden file, extra flags) triples. E1 covers
# profiling end to end (DRAM model, mapping, profiler); E3 covers
# steering (virtio-mem, buddy placement, EPT spray); E11's --smoke
# covers the mitigation matrix (defense transforms, sharded cells,
# matrix fingerprint).
TRACES = [
    ("bench_table1_profiling", "e1_profiling_seed1.txt", []),
    ("bench_table2_page_steering", "e3_page_steering_seed1.txt", []),
    ("bench_mitigation_matrix", "e11_mitigation_smoke_seed1.txt",
     ["--smoke", "--json-out=/dev/null"]),
]


def run_bench(bench_dir: pathlib.Path, name: str,
              extra_flags: list[str]) -> str:
    exe = bench_dir / name
    if not exe.exists():
        sys.exit(f"error: bench binary not found: {exe}")
    result = subprocess.run(
        [str(exe), *PINNED_FLAGS, *extra_flags],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,  # warn/info logs are not golden
        text=True,
        timeout=600,
    )
    if result.returncode != 0:
        sys.exit(f"error: {name} exited with {result.returncode}")
    return result.stdout


def write_step_summary(failed: list[str], diff_text: str) -> None:
    """Echo the diff into the GitHub job summary, when available."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as summary:
        summary.write("## Golden-trace mismatch\n\n")
        summary.write("Diverging benches: " + ", ".join(failed) + "\n\n")
        summary.write(
            "Intentional behaviour change? Re-baseline with "
            "`tools/check_golden.py --bench-dir <dir> --update` and "
            "commit the new traces.\n\n")
        summary.write("```diff\n" + diff_text + "```\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True, type=pathlib.Path,
                        help="directory holding the bench binaries")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden files instead of diffing")
    parser.add_argument("--diff-file", type=pathlib.Path,
                        help="also write the combined unified diff here "
                             "(for CI artifact upload)")
    args = parser.parse_args()

    failed: list[str] = []
    diff_chunks: list[str] = []
    for bench, golden_name, extra_flags in TRACES:
        actual = run_bench(args.bench_dir, bench, extra_flags)
        golden_path = GOLDEN_DIR / golden_name
        if args.update:
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(actual)
            print(f"updated {golden_path.relative_to(REPO_ROOT)}")
            continue
        if not golden_path.exists():
            print(f"FAIL {bench}: missing golden file {golden_path}; "
                  f"run with --update to create it")
            failed.append(bench)
            continue
        expected = golden_path.read_text()
        if actual == expected:
            print(f"ok   {bench} matches {golden_name}")
            continue
        failed.append(bench)
        print(f"FAIL {bench}: output differs from {golden_name}")
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{golden_name}",
            tofile=f"{bench} (current)",
        ))
        sys.stdout.write(diff)
        diff_chunks.append(diff)

    diff_text = "".join(diff_chunks)
    if args.diff_file and not args.update:
        args.diff_file.parent.mkdir(parents=True, exist_ok=True)
        args.diff_file.write_text(diff_text)
        if failed:
            print(f"diff written to {args.diff_file}")
    if failed:
        write_step_summary(failed, diff_text)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
