#!/usr/bin/env python3
"""Perf regression gate over the BENCH_*.json telemetry reports.

Two sources, selected by flags:

  --bench-dir DIR   run the profile's benches from DIR at pinned
                    configurations and collect the JSON they emit
  --json-dir DIR    skip running; read pre-generated BENCH_*.json
                    from DIR (the nightly soak pipeline hands over
                    reports it already produced)

and two gating profiles:

  --profile pr      (default) the fast PR gate: fork_speedup only
  --profile nightly the soak gate: fork_speedup, the Table 3 S1
                    trial rate, and the BENCH_soak.json report
                    (informational -- soak seeds rotate nightly, so
                    its rates are trended, not gated)

A file the selected profile expects but cannot find is a loud FAIL,
never a skip: a bench that silently stops emitting its report must
not look like a green gate. Wall-clock numbers vary with the machine,
so only machine-portable ratios are gated; everything else (absolute
seconds, trials/sec, peak RSS, the env_* telemetry envelope) is
reported for trend-watching (tools/bench_trend.py) and uploaded as a
CI artifact.

The comparison table always goes to stdout and -- under GitHub
Actions -- into the job summary ($GITHUB_STEP_SUMMARY), pass or fail.
Intentional perf changes are re-baselined with --update-baseline and
the new bench/baselines/*.json committed.

Exit status: 0 when every gated metric holds (or baselines were
updated), 1 on a regression, a missing report or a bench failure.
"""

import argparse
import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "bench" / "baselines"

# Pinned flags: the perf smoke must be fast and reproducible in shape,
# so it runs the --quick workloads at small world sizes.
# (binary, emitted json, output flag, extra flags)
BENCHES = {
    "BENCH_clone.json": (
        "bench_clone_fork", "--out=",
        ["--quick", "--host-gib=2", "--seed=1"]),
    "BENCH_table3.json": (
        "bench_table3_exploitation", "--json-out=",
        ["--quick", "--host-gib=1", "--seed=1", "--system=s1"]),
    "BENCH_soak.json": (
        "bench_fault_soak", "--json-out=",
        ["--quick", "--trials=8", "--seed-base=1", "--intensity=0.5"]),
    "BENCH_mitigation.json": (
        "bench_mitigation_matrix", "--json-out=",
        ["--quick", "--host-gib=1", "--seed=2", "--trials=16",
         "--attacks=pairwise"]),
    "BENCH_dispatch.json": (
        "bench_dispatch_soak", "--json-out=",
        ["--quick", "--seed-base=1", "--intensity=0.5"]),
}

# profile -> {json file -> {metric -> direction}}. A listed file is
# required; an empty metric map means report-only (still uploaded and
# trended, but nothing gated and no baseline needed).
PROFILES = {
    "pr": {
        "BENCH_clone.json": {"fork_speedup": "higher"},
        # Table 3 rates are absolute wall-clock -> informational on
        # the PR gate, where runner noise would make them flaky.
        "BENCH_table3.json": {},
    },
    "nightly": {
        "BENCH_clone.json": {"fork_speedup": "higher"},
        "BENCH_table3.json": {"s1_trials_per_second": "higher"},
        # Soak seeds rotate nightly: rates are trended, not gated.
        "BENCH_soak.json": {},
        # Mitigation matrix: per-cell progress counters are exact
        # (fingerprint-stable), so correctness lives in the golden
        # trace and the tier-2 properties; here the report feeds the
        # cells_per_second trend only.
        "BENCH_mitigation.json": {},
        # Dispatcher soak: control-plane counters vary with the chaos
        # seed and shards_per_second with the runner, so the report is
        # trended only; correctness (identity_failures == 0) is the
        # bench's own exit status.
        "BENCH_dispatch.json": {},
    },
}


def run_bench(bench_dir: pathlib.Path, json_name: str,
              work_dir: pathlib.Path) -> pathlib.Path:
    name, out_flag, flags = BENCHES[json_name]
    # Absolute: the bench runs from a scratch cwd (stray checkpoint or
    # JSON files must not land in the build tree).
    exe = (bench_dir / name).resolve()
    if not exe.exists():
        sys.exit(f"error: bench binary not found: {exe}")
    out_path = work_dir / json_name
    result = subprocess.run(
        [str(exe), *flags, out_flag + str(out_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        timeout=1200,
        cwd=work_dir,
    )
    if result.returncode != 0:
        sys.stdout.write(result.stdout)
        sys.exit(f"error: {name} exited with {result.returncode}")
    return out_path


def write_step_summary(table: list[str], failures: list[str]) -> None:
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as summary:
        summary.write("## Perf gate\n\n")
        summary.write("\n".join(table) + "\n\n")
        if failures:
            summary.write("### Failures\n\n")
            summary.write("\n".join(f"- {f}" for f in failures) + "\n\n")
            summary.write(
                "Intentional perf change? Re-baseline with "
                "`tools/check_bench.py --bench-dir <dir> "
                "--update-baseline` and commit bench/baselines/.\n")


def compare(json_name: str, gated: dict, actual: dict, baseline: dict,
            tolerance: float, table: list[str],
            failures: list[str]) -> None:
    for metric, direction in gated.items():
        if metric not in baseline:
            failures.append(f"{json_name}: baseline lacks gated "
                            f"metric '{metric}'; re-baseline")
            continue
        if metric not in actual:
            failures.append(f"{json_name}: bench no longer emits "
                            f"gated metric '{metric}'")
            continue
        base, cur = float(baseline[metric]), float(actual[metric])
        if base <= 0:
            continue  # degenerate baseline; nothing to gate against
        change = (cur - base) / base
        regressed = (change < -tolerance if direction == "higher"
                     else change > tolerance)
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{verdict:9s} {json_name}:{metric} "
              f"baseline={base:.3f} current={cur:.3f} "
              f"({change:+.1%}, gate ±{tolerance:.0%}, "
              f"{direction} is better)")
        table.append(f"| {json_name} | {metric} | {base:.3f} | "
                     f"{cur:.3f} | {change:+.1%} | {verdict} |")
        if regressed:
            failures.append(
                f"{json_name}: {metric} regressed {change:+.1%} "
                f"(baseline {base:.3f} -> {cur:.3f})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", type=pathlib.Path,
                        help="directory holding the bench binaries "
                             "(runs the profile's benches)")
    parser.add_argument("--json-dir", type=pathlib.Path,
                        help="directory holding pre-generated "
                             "BENCH_*.json (no benches are run)")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="pr",
                        help="which gating profile to apply "
                             "(default: pr)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite bench/baselines/ instead of "
                             "comparing")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        help="also copy the fresh JSON reports here "
                             "(for CI artifact upload)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="gated-metric regression tolerance "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args()
    if bool(args.bench_dir) == bool(args.json_dir):
        parser.error("exactly one of --bench-dir / --json-dir "
                     "is required")

    profile = PROFILES[args.profile]
    failures: list[str] = []
    table = [f"Profile: `{args.profile}`, tolerance "
             f"±{args.tolerance:.0%}", "",
             "| report | metric | baseline | current | change "
             "| verdict |",
             "|---|---|---|---|---|---|"]
    with tempfile.TemporaryDirectory() as tmp:
        work_dir = pathlib.Path(tmp)
        for json_name, gated in profile.items():
            if args.json_dir:
                out_path = args.json_dir / json_name
                if not out_path.exists():
                    failures.append(
                        f"missing report {json_name} in "
                        f"{args.json_dir} (the producing bench did "
                        "not run or did not write it)")
                    table.append(f"| {json_name} | *(missing)* | | | "
                                 "| MISSING |")
                    continue
            else:
                out_path = run_bench(args.bench_dir, json_name,
                                     work_dir)
                if not out_path.exists():
                    failures.append(
                        f"{BENCHES[json_name][0]} did not write "
                        f"{json_name}")
                    table.append(f"| {json_name} | *(missing)* | | | "
                                 "| MISSING |")
                    continue
            actual = json.loads(out_path.read_text())
            if args.out_dir:
                args.out_dir.mkdir(parents=True, exist_ok=True)
                shutil.copy(out_path, args.out_dir / json_name)
            baseline_path = BASELINE_DIR / json_name
            if args.update_baseline:
                if gated:
                    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
                    shutil.copy(out_path, baseline_path)
                    print("updated "
                          f"{baseline_path.relative_to(REPO_ROOT)}")
                continue
            if not gated:
                print(f"ok        {json_name} (report-only)")
                table.append(f"| {json_name} | *(report-only)* | | | "
                             "| ok |")
                continue
            if not baseline_path.exists():
                failures.append(
                    f"missing baseline {json_name}; run with "
                    "--update-baseline to create it")
                continue
            baseline = json.loads(baseline_path.read_text())
            compare(json_name, gated, actual, baseline,
                    args.tolerance, table, failures)

    for failure in failures:
        print(f"FAIL {failure}")
    write_step_summary(table, failures)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
