#!/usr/bin/env python3
"""Perf-smoke regression check for the clone/fork benches.

Runs the perf benches at a pinned configuration, collects the JSON
metrics they emit (BENCH_clone.json, BENCH_table3.json) and compares
the *gated* metrics against the checked-in baselines in
bench/baselines/. Wall-clock numbers vary with the machine, so only
machine-portable ratios are gated:

    BENCH_clone.json: fork_speedup -- deep world construction over
        CoW forkTrial(), per world. Higher is better; a drop of more
        than the tolerance (default 20%) fails.

Everything else (absolute seconds, trials/sec, peak RSS) is reported
for trend-watching and uploaded as a CI artifact, but not gated.

Usage:
    check_bench.py --bench-dir <dir-with-bench-binaries>
                   [--update-baseline] [--out-dir <dir>]
                   [--tolerance 0.20]

On a regression the comparison table goes to stdout and -- under
GitHub Actions -- into the job summary ($GITHUB_STEP_SUMMARY).
Intentional perf changes are re-baselined with --update-baseline and
the new bench/baselines/*.json committed.

Exit status: 0 when every gated metric holds (or baselines were
updated), 1 on a regression or bench failure.
"""

import argparse
import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "bench" / "baselines"

# Pinned flags: the perf smoke must be fast and reproducible in shape,
# so it runs the --quick workloads at small world sizes.
BENCHES = [
    # (binary, emitted json, extra flags)
    ("bench_clone_fork", "BENCH_clone.json",
     ["--quick", "--host-gib=2", "--seed=1"]),
    ("bench_table3_exploitation", "BENCH_table3.json",
     ["--quick", "--host-gib=1", "--seed=1", "--system=s1"]),
]

# metric -> direction ("higher" / "lower" is better), per JSON file.
GATED = {
    "BENCH_clone.json": {"fork_speedup": "higher"},
    # Table 3 rates are absolute wall-clock -> informational only.
    "BENCH_table3.json": {},
}


def run_bench(bench_dir: pathlib.Path, name: str, json_name: str,
              flags: list[str], work_dir: pathlib.Path) -> pathlib.Path:
    # Absolute: the bench runs from a scratch cwd (stray checkpoint or
    # JSON files must not land in the build tree).
    exe = (bench_dir / name).resolve()
    if not exe.exists():
        sys.exit(f"error: bench binary not found: {exe}")
    out_flag = ("--out=" if json_name == "BENCH_clone.json"
                else "--json-out=")
    out_path = work_dir / json_name
    result = subprocess.run(
        [str(exe), *flags, out_flag + str(out_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        timeout=1200,
        cwd=work_dir,
    )
    if result.returncode != 0:
        sys.stdout.write(result.stdout)
        sys.exit(f"error: {name} exited with {result.returncode}")
    if not out_path.exists():
        sys.exit(f"error: {name} did not write {json_name}")
    return out_path


def write_step_summary(lines: list[str]) -> None:
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as summary:
        summary.write("## Perf-smoke regression\n\n")
        summary.write("\n".join(lines) + "\n\n")
        summary.write(
            "Intentional perf change? Re-baseline with "
            "`tools/check_bench.py --bench-dir <dir> "
            "--update-baseline` and commit bench/baselines/.\n")


def compare(json_name: str, actual: dict, baseline: dict,
            tolerance: float, failures: list[str]) -> None:
    for metric, direction in GATED[json_name].items():
        if metric not in baseline:
            failures.append(f"{json_name}: baseline lacks gated "
                            f"metric '{metric}'; re-baseline")
            continue
        if metric not in actual:
            failures.append(f"{json_name}: bench no longer emits "
                            f"gated metric '{metric}'")
            continue
        base, cur = float(baseline[metric]), float(actual[metric])
        if base <= 0:
            continue  # degenerate baseline; nothing to gate against
        change = (cur - base) / base
        regressed = (change < -tolerance if direction == "higher"
                     else change > tolerance)
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{verdict:9s} {json_name}:{metric} "
              f"baseline={base:.3f} current={cur:.3f} "
              f"({change:+.1%}, gate ±{tolerance:.0%}, "
              f"{direction} is better)")
        if regressed:
            failures.append(
                f"{json_name}: {metric} regressed {change:+.1%} "
                f"(baseline {base:.3f} -> {cur:.3f})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True, type=pathlib.Path,
                        help="directory holding the bench binaries")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite bench/baselines/ instead of "
                             "comparing")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        help="also copy the fresh JSON reports here "
                             "(for CI artifact upload)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="gated-metric regression tolerance "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args()

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        work_dir = pathlib.Path(tmp)
        for bench, json_name, flags in BENCHES:
            out_path = run_bench(args.bench_dir, bench, json_name,
                                 flags, work_dir)
            actual = json.loads(out_path.read_text())
            if args.out_dir:
                args.out_dir.mkdir(parents=True, exist_ok=True)
                shutil.copy(out_path, args.out_dir / json_name)
            baseline_path = BASELINE_DIR / json_name
            if args.update_baseline:
                BASELINE_DIR.mkdir(parents=True, exist_ok=True)
                shutil.copy(out_path, baseline_path)
                print(f"updated {baseline_path.relative_to(REPO_ROOT)}")
                continue
            if not baseline_path.exists():
                failures.append(
                    f"missing baseline {json_name}; run with "
                    "--update-baseline to create it")
                continue
            baseline = json.loads(baseline_path.read_text())
            compare(json_name, actual, baseline, args.tolerance,
                    failures)

    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        write_step_summary(failures)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
