/**
 * @file
 * Supervised sharded campaign sweep driver.
 *
 * Splits a Monte-Carlo campaign of N trials into contiguous
 * seed-range shards and drives each shard as an independent OS
 * process under the hh::dispatch supervisor: leases with worker
 * heartbeats, deterministic retry backoff, a per-shard attempt cap
 * and quarantine, all recorded in a crash-safe ledger so `kill -9`
 * of the supervisor resumes with `sweep --resume`. Each process
 * profiles its own host -- the campaign is a pure function of the
 * configuration, so every process derives the identical host-physical
 * profile and fingerprint -- and the merged result is
 * bitwise-identical to a single-process runAttempts() at any shard
 * count x thread count, which `single` and the sweep/merge paths make
 * checkable by printing the same canonical dump: CI byte-diffs the
 * two (docs/distributed_sweeps.md).
 *
 * Subcommands:
 *   single                  run the campaign in-process, print dump
 *   run   --shard=I/K --out=F  run shard I of K, write artifact F
 *         --range=B:E         ... or an explicit trial range
 *   merge FILE...           merge shard artifacts, print dump
 *   sweep --shards=K        supervise K shard workers, merge, print
 *   heal  --gaps=FILE       finish a degraded sweep's missing ranges
 *
 * Campaign flags: --trials=N --threads=N --seed=N --host-gib=N
 *   --fault-seed=N --fault-intensity=X (X > 0 installs a randomized
 *   FaultPlan) --checkpoint-every=N --resume --stop-after=N
 * Worker flags (run): --heartbeat=FILE
 * Merge flags: --allow-partial --stale-seconds=S --gap-manifest=FILE
 * Supervisor flags (sweep/heal): --jobs=P --lease-seconds=X
 *   --max-attempts=M --backoff-ms=N --backoff-cap-ms=N --ledger=FILE
 *   --gap-manifest=FILE --quarantine=I[,J...]
 *   --dispatch-fault-seed=N --dispatch-fault-intensity=X
 *
 * Exit codes: 0 success (canonical dump on stdout), 1 error, 2 usage,
 * 3 stopped early (--stop-after test hook), 4 degraded -- the sweep
 * completed with missing ranges and wrote a gap manifest that
 * `hh_sweep heal` can close to the bitwise-identical full result.
 *
 * The dump deliberately excludes resumedTrials (bookkeeping of *how*
 * a result was computed, not *what* it is -- the same masking
 * snapshot::verifyResumeIdentity applies) and renders every double as
 * its IEEE-754 bit pattern: a byte-equal dump means a bitwise-equal
 * result.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <bit>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "hyperhammer/hyperhammer.h"

using namespace hh;

namespace {

struct SweepOptions
{
    unsigned trials = 8;
    unsigned threads = 1;
    uint64_t seed = 1;
    uint64_t hostBytes = 0;
    uint64_t faultSeed = 0;
    double faultIntensity = 0.0;
    uint64_t checkpointEvery = 0;
    bool resume = false;
    uint64_t stopAfter = 0;
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    bool haveRange = false;
    shard::ShardRange range;
    std::string out;
    std::string outDir = ".";
    std::string heartbeat;
    unsigned shards = 4;
    // Merge behaviour.
    bool allowPartial = false;
    double staleSeconds = 300.0;
    std::string gapManifest;
    // Supervisor knobs.
    unsigned jobs = 0; // 0 = one worker per shard
    double leaseSeconds = 30.0;
    uint32_t maxAttempts = 3;
    uint64_t backoffMs = 200;
    uint64_t backoffCapMs = 5'000;
    std::string ledger;
    std::vector<uint32_t> quarantine;
    uint64_t dispatchFaultSeed = 0;
    double dispatchFaultIntensity = 0.0;
    std::string gaps;
    std::vector<std::string> files;

    static SweepOptions
    parse(int argc, char **argv)
    {
        SweepOptions opts;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                return arg.compare(0, len, prefix) == 0
                    ? arg.c_str() + len : nullptr;
            };
            if (const char *v = value("--trials="))
                opts.trials = static_cast<unsigned>(
                    std::strtoul(v, nullptr, 0));
            else if (const char *v2 = value("--threads="))
                opts.threads = static_cast<unsigned>(
                    std::strtoul(v2, nullptr, 0));
            else if (const char *v3 = value("--seed="))
                opts.seed = std::strtoull(v3, nullptr, 0);
            else if (const char *v4 = value("--host-gib="))
                opts.hostBytes =
                    std::strtoull(v4, nullptr, 0) * 1_GiB;
            else if (const char *v5 = value("--fault-seed="))
                opts.faultSeed = std::strtoull(v5, nullptr, 0);
            else if (const char *v6 = value("--fault-intensity="))
                opts.faultIntensity = std::strtod(v6, nullptr);
            else if (const char *v7 = value("--checkpoint-every="))
                opts.checkpointEvery = std::strtoull(v7, nullptr, 0);
            else if (const char *v8 = value("--stop-after="))
                opts.stopAfter = std::strtoull(v8, nullptr, 0);
            else if (const char *v9 = value("--shard=")) {
                // I/K, e.g. --shard=2/4.
                char *slash = nullptr;
                opts.shardIndex = static_cast<unsigned>(
                    std::strtoul(v9, &slash, 0));
                if (slash == nullptr || *slash != '/') {
                    std::fprintf(stderr,
                                 "hh_sweep: bad --shard (want I/K)\n");
                    std::exit(2);
                }
                opts.shardCount = static_cast<unsigned>(
                    std::strtoul(slash + 1, nullptr, 0));
            } else if (const char *v10 = value("--range=")) {
                // B:E, a half-open absolute trial range.
                char *colon = nullptr;
                opts.range.begin = std::strtoull(v10, &colon, 0);
                if (colon == nullptr || *colon != ':') {
                    std::fprintf(stderr,
                                 "hh_sweep: bad --range (want B:E)\n");
                    std::exit(2);
                }
                opts.range.end =
                    std::strtoull(colon + 1, nullptr, 0);
                opts.haveRange = true;
            } else if (const char *v11 = value("--out="))
                opts.out = v11;
            else if (const char *v12 = value("--out-dir="))
                opts.outDir = v12;
            else if (const char *v13 = value("--heartbeat="))
                opts.heartbeat = v13;
            else if (const char *v14 = value("--shards="))
                opts.shards = static_cast<unsigned>(
                    std::strtoul(v14, nullptr, 0));
            else if (const char *v15 = value("--stale-seconds="))
                opts.staleSeconds = std::strtod(v15, nullptr);
            else if (const char *v16 = value("--gap-manifest="))
                opts.gapManifest = v16;
            else if (const char *v17 = value("--jobs="))
                opts.jobs = static_cast<unsigned>(
                    std::strtoul(v17, nullptr, 0));
            else if (const char *v18 = value("--lease-seconds="))
                opts.leaseSeconds = std::strtod(v18, nullptr);
            else if (const char *v19 = value("--max-attempts="))
                opts.maxAttempts = static_cast<uint32_t>(
                    std::strtoul(v19, nullptr, 0));
            else if (const char *v20 = value("--backoff-ms="))
                opts.backoffMs = std::strtoull(v20, nullptr, 0);
            else if (const char *v21 = value("--backoff-cap-ms="))
                opts.backoffCapMs = std::strtoull(v21, nullptr, 0);
            else if (const char *v22 = value("--ledger="))
                opts.ledger = v22;
            else if (const char *v23 = value("--quarantine=")) {
                const char *p = v23;
                while (*p != '\0') {
                    char *end = nullptr;
                    opts.quarantine.push_back(static_cast<uint32_t>(
                        std::strtoul(p, &end, 0)));
                    p = (end != nullptr && *end == ',') ? end + 1
                                                        : end;
                    if (p == nullptr)
                        break;
                }
            } else if (const char *v24 =
                           value("--dispatch-fault-seed="))
                opts.dispatchFaultSeed =
                    std::strtoull(v24, nullptr, 0);
            else if (const char *v25 =
                         value("--dispatch-fault-intensity="))
                opts.dispatchFaultIntensity = std::strtod(v25, nullptr);
            else if (const char *v26 = value("--gaps="))
                opts.gaps = v26;
            else if (arg == "--allow-partial")
                opts.allowPartial = true;
            else if (arg == "--resume")
                opts.resume = true;
            else if (arg.rfind("--", 0) == 0) {
                std::fprintf(stderr, "hh_sweep: unknown flag %s\n",
                             arg.c_str());
                std::exit(2);
            } else
                opts.files.push_back(arg);
        }
        return opts;
    }
};

sys::SystemConfig
campaignHostConfig(const SweepOptions &opts)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(opts.seed).withMemory(
        opts.hostBytes ? opts.hostBytes : 1_GiB);
    // Densify weak cells so attempts have material to work with at
    // this scale (same factor the orchestrator tests and the fault
    // soak use).
    cfg.dram.fault.weakCellsPerRow *= 4.0;
    if (opts.faultIntensity > 0.0)
        cfg = cfg.withFaults(fault::FaultPlan::randomized(
            opts.faultSeed, opts.faultIntensity));
    return cfg;
}

vm::VmConfig
campaignVmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

attack::AttackConfig
campaignAttackConfig(const SweepOptions &opts)
{
    attack::AttackConfig cfg;
    cfg.maxAttempts = opts.trials;
    cfg.steering.exhaustMappings = 2'500;
    return cfg;
}

/** One per-process campaign context: host + profiled attack. */
struct Campaign
{
    std::unique_ptr<sys::HostSystem> host;
    std::unique_ptr<attack::HyperHammerAttack> attack;
};

Campaign
buildCampaign(const SweepOptions &opts)
{
    Campaign campaign;
    campaign.host =
        std::make_unique<sys::HostSystem>(campaignHostConfig(opts));
    campaign.attack = std::make_unique<attack::HyperHammerAttack>(
        *campaign.host, campaignVmConfig(),
        campaign.host->dram().mapping(), campaignAttackConfig(opts));
    campaign.attack->profilePhase();
    if (campaign.attack->hostProfile().empty()) {
        std::fprintf(stderr,
                     "hh_sweep: profiling found no exploitable bits "
                     "at this configuration; nothing to sweep\n");
        std::exit(1);
    }
    return campaign;
}

uint64_t
bits64(double x)
{
    return std::bit_cast<uint64_t>(x);
}

void
printStats(const char *name, const base::RunningStats &stats)
{
    const base::RunningStats::Raw raw = stats.raw();
    std::printf("stat %s n=%llu mean=%016llx m2=%016llx "
                "total=%016llx min=%016llx max=%016llx\n",
                name, static_cast<unsigned long long>(raw.n),
                static_cast<unsigned long long>(bits64(raw.mean)),
                static_cast<unsigned long long>(bits64(raw.m2)),
                static_cast<unsigned long long>(bits64(raw.total)),
                static_cast<unsigned long long>(bits64(raw.min)),
                static_cast<unsigned long long>(bits64(raw.max)));
}

/** The canonical dump `single` and the merge paths all print. */
void
printResult(uint64_t fingerprint, unsigned trials,
            const attack::AttackResult &result)
{
    std::printf("campaign fingerprint=%016llx trials=%u\n",
                static_cast<unsigned long long>(fingerprint), trials);
    std::printf("result success=%d attempts=%u status=%s degraded=%d "
                "reprofiles=%u faultsInjected=%llu totalTime=%llu "
                "profilingTime=%llu\n",
                result.success ? 1 : 0, result.attempts,
                base::errorName(result.status.error()),
                result.degraded ? 1 : 0, result.reprofiles,
                static_cast<unsigned long long>(result.faultsInjected),
                static_cast<unsigned long long>(result.totalTime),
                static_cast<unsigned long long>(result.profilingTime));
    printStats("attemptSeconds", result.stats.attemptSeconds);
    printStats("bitsTargeted", result.stats.bitsTargeted);
    printStats("releasedSubBlocks", result.stats.releasedSubBlocks);
    printStats("demotions", result.stats.demotions);
    printStats("changedPages", result.stats.changedPages);
    printStats("epteCandidates", result.stats.epteCandidates);
    printStats("retries", result.stats.retries);
    for (size_t i = 0; i < result.outcomes.size(); ++i) {
        const attack::AttemptOutcome &o = result.outcomes[i];
        std::printf(
            "outcome %zu success=%d bits=%u released=%llu "
            "demotions=%llu changed=%llu epte=%llu duration=%llu "
            "retries=%u backoff=%llu faults=%llu\n",
            i, o.success ? 1 : 0, o.bitsTargeted,
            static_cast<unsigned long long>(o.releasedSubBlocks),
            static_cast<unsigned long long>(o.demotions),
            static_cast<unsigned long long>(o.changedPages),
            static_cast<unsigned long long>(o.epteCandidates),
            static_cast<unsigned long long>(o.duration), o.retries,
            static_cast<unsigned long long>(o.backoffTime),
            static_cast<unsigned long long>(o.faultsFired));
    }
}

int
cmdSingle(const SweepOptions &opts)
{
    Campaign campaign = buildCampaign(opts);
    snapshot::CheckpointPolicy policy;
    const attack::AttackResult result =
        campaign.attack->runAttempts(opts.trials, opts.threads,
                                     policy);
    printResult(campaign.attack->campaignFingerprint(), opts.trials,
                result);
    return 0;
}

int
cmdRun(const SweepOptions &opts)
{
    if (opts.out.empty()) {
        std::fprintf(stderr, "hh_sweep run: --out=FILE required\n");
        return 2;
    }
    shard::ShardRange range;
    if (opts.haveRange) {
        range = opts.range;
        if (range.begin > range.end || range.end > opts.trials) {
            std::fprintf(stderr, "hh_sweep run: --range outside the "
                                 "campaign\n");
            return 2;
        }
    } else {
        if (opts.shardIndex >= opts.shardCount) {
            std::fprintf(stderr, "hh_sweep run: shard %u out of range "
                                 "(%u shards)\n",
                         opts.shardIndex, opts.shardCount);
            return 2;
        }
        const std::vector<shard::ShardRange> ranges =
            shard::planShards(opts.trials, opts.shardCount);
        range = ranges[opts.shardIndex];
    }
    Campaign campaign = buildCampaign(opts);

    snapshot::CheckpointPolicy policy;
    if (opts.checkpointEvery > 0) {
        policy.path = opts.out + ".ckpt";
        policy.everyTrials = opts.checkpointEvery;
        policy.resume = opts.resume;
        policy.stopAfterTrials = opts.stopAfter;
    }
    policy.heartbeatPath = opts.heartbeat;
    std::fprintf(stderr,
                 "hh_sweep: shard trials [%llu, %llu)\n",
                 static_cast<unsigned long long>(range.begin),
                 static_cast<unsigned long long>(range.end));
    attack::TrialRangeResult ranged = campaign.attack->runTrialRange(
        range.begin, range.end, opts.threads, policy);

    shard::ShardResult result;
    result.manifest.campaignFingerprint =
        campaign.attack->campaignFingerprint();
    result.manifest.totalTrials = opts.trials;
    result.manifest.range = range;
    result.terminal = !ranged.stopped;
    result.outcomes = std::move(ranged.outcomes);
    const base::Status saved = shard::saveShard(opts.out, result);
    if (!saved.ok()) {
        std::fprintf(stderr, "hh_sweep: cannot write shard '%s': %s\n",
                     opts.out.c_str(),
                     base::errorName(saved.error()));
        return 1;
    }
    if (ranged.stopped) {
        // The artifact above is the abandoned-partial case the merge
        // staleness check and the supervisor takeover must handle: it
        // carries terminal=false and the strict merge answers Busy.
        std::fprintf(stderr,
                     "hh_sweep: shard stopped after %zu trials; "
                     "rerun with --resume to finish\n",
                     result.outcomes.size());
        return 3; // incomplete by request (--stop-after test hook)
    }
    std::fprintf(stderr, "hh_sweep: wrote %s (%zu outcomes)\n",
                 opts.out.c_str(), result.outcomes.size());
    return 0;
}

/**
 * Load merge inputs, classifying partial/abandoned artifacts: a
 * non-terminal artifact younger than --stale-seconds belongs to a
 * worker that may still be running (hard Busy in every mode); a stale
 * one is abandoned and may be taken over -- dropped to a hole under
 * --allow-partial, or rejected with resume guidance otherwise.
 */
int
loadMergeInputs(const SweepOptions &opts,
                const std::vector<std::string> &files,
                std::vector<shard::ShardResult> &shards)
{
    for (const std::string &file : files) {
        auto loaded = shard::loadShard(file);
        if (!loaded) {
            if (opts.allowPartial) {
                std::fprintf(stderr,
                             "hh_sweep: skipping unreadable '%s' "
                             "(%s); its range becomes a hole\n",
                             file.c_str(),
                             base::errorName(loaded.error()));
                continue;
            }
            std::fprintf(stderr, "hh_sweep: cannot load '%s': %s\n",
                         file.c_str(),
                         base::errorName(loaded.error()));
            return 1;
        }
        if (!loaded->terminal || !loaded->complete()) {
            const double age = dispatch::fileAgeSeconds(file);
            if (age >= 0.0 && age <= opts.staleSeconds) {
                std::fprintf(stderr,
                             "hh_sweep: '%s' is a fresh partial "
                             "artifact (age %.0fs); its worker may "
                             "still be running -- retry after it "
                             "finishes or exceeds --stale-seconds\n",
                             file.c_str(), age);
                return 1;
            }
            if (!opts.allowPartial) {
                std::fprintf(stderr,
                             "hh_sweep: '%s' is an abandoned partial "
                             "artifact; finish it with `run --resume` "
                             "or merge with --allow-partial to take "
                             "over its range as a hole\n",
                             file.c_str());
                return 1;
            }
            std::fprintf(stderr,
                         "hh_sweep: taking over abandoned '%s' "
                         "(age %.0fs); its range becomes a hole\n",
                         file.c_str(), age);
            // Keep it in the input set: the partial merge reports a
            // non-terminal shard's whole range as missing.
        }
        shards.push_back(std::move(*loaded));
    }
    return 0;
}

/** Degraded completion: write the gap manifest, report, exit 4. */
int
finishDegraded(const SweepOptions &opts, const std::string &gap_path,
               const std::vector<std::string> &healthy,
               const shard::SweepReport &report)
{
    dispatch::GapManifest manifest;
    manifest.campaignFingerprint = report.campaignFingerprint;
    manifest.totalTrials = report.totalTrials;
    // The trial count comes from the shards' own manifests; the other
    // campaign parameters are only known from the flags, so a manifest
    // written by `merge` is healable only when the campaign flags were
    // repeated on the merge command line (sweep always knows them).
    manifest.campaign.trials = report.totalTrials;
    manifest.campaign.threads = opts.threads;
    manifest.campaign.seed = opts.seed;
    manifest.campaign.hostGib =
        (opts.hostBytes ? opts.hostBytes : 1_GiB) / 1_GiB;
    manifest.campaign.faultSeed = opts.faultSeed;
    manifest.campaign.faultIntensity = opts.faultIntensity;
    manifest.campaign.checkpointEvery =
        opts.checkpointEvery ? opts.checkpointEvery : 1;
    manifest.artifacts = healthy;
    manifest.missing = report.missing;
    const base::Status saved =
        dispatch::saveGapManifest(gap_path, manifest);
    if (!saved.ok()) {
        std::fprintf(stderr,
                     "hh_sweep: cannot write gap manifest '%s'\n",
                     gap_path.c_str());
        return 1;
    }
    for (const shard::ShardRange &hole : report.missing)
        std::fprintf(stderr,
                     "hh_sweep: missing trials [%llu, %llu)\n",
                     static_cast<unsigned long long>(hole.begin),
                     static_cast<unsigned long long>(hole.end));
    std::fprintf(stderr,
                 "hh_sweep: degraded sweep; close the holes with "
                 "`hh_sweep heal --gaps=%s`\n",
                 gap_path.c_str());
    if (report.exact) {
        // The holes start past the campaign's first success: the
        // degraded fold already IS the canonical result.
        printResult(report.campaignFingerprint,
                    static_cast<unsigned>(report.totalTrials),
                    report.result);
    }
    return 4;
}

int
cmdMerge(const SweepOptions &opts)
{
    if (opts.files.empty()) {
        std::fprintf(stderr, "hh_sweep merge: no shard files given\n");
        return 2;
    }
    std::vector<shard::ShardResult> shards;
    shards.reserve(opts.files.size());
    const int rc = loadMergeInputs(opts, opts.files, shards);
    if (rc != 0)
        return rc;
    if (shards.empty()) {
        std::fprintf(stderr, "hh_sweep merge: no usable artifacts\n");
        return 1;
    }
    shard::MergePolicy policy;
    policy.allowPartial = opts.allowPartial;
    auto report =
        shard::mergeShards(std::move(shards), policy);
    if (!report) {
        std::fprintf(stderr, "hh_sweep: merge failed: %s\n",
                     base::errorName(report.error()));
        return 1;
    }
    if (!report->partial()) {
        printResult(report->campaignFingerprint,
                    static_cast<unsigned>(report->totalTrials),
                    report->result);
        return 0;
    }
    std::vector<std::string> healthy;
    for (const std::string &file : opts.files) {
        auto loaded = shard::loadShard(file);
        if (loaded && loaded->terminal && loaded->complete())
            healthy.push_back(file);
    }
    const std::string gap_path = opts.gapManifest.empty()
        ? opts.outDir + "/gaps.json"
        : opts.gapManifest;
    return finishDegraded(opts, gap_path, healthy, *report);
}

std::string
selfExe(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * The production WorkerLauncher: fork + exec this binary's `run`
 * subcommand for one shard range. Workers always resume (an absent
 * checkpoint starts at the range begin) and always checkpoint, so a
 * reclaimed lease never recomputes a completed-trial prefix.
 */
dispatch::WorkerLauncher
forkLauncher(const std::string &exe, const SweepOptions &opts)
{
    return [exe, opts](const dispatch::WorkerSpec &spec) -> long {
        std::vector<std::string> args = {
            exe,
            "run",
            "--trials=" + std::to_string(opts.trials),
            "--threads=" + std::to_string(opts.threads),
            "--seed=" + std::to_string(opts.seed),
            "--fault-seed=" + std::to_string(opts.faultSeed),
            "--fault-intensity=" + std::to_string(opts.faultIntensity),
            "--range=" + std::to_string(spec.range.begin) + ":"
                + std::to_string(spec.range.end),
            "--out=" + spec.artifactPath,
            "--checkpoint-every="
                + std::to_string(opts.checkpointEvery
                                     ? opts.checkpointEvery : 1),
            "--heartbeat=" + spec.heartbeatPath,
            "--resume",
        };
        if (opts.hostBytes)
            args.push_back("--host-gib="
                           + std::to_string(opts.hostBytes / 1_GiB));

        const pid_t pid = ::fork();
        if (pid < 0)
            return -1;
        if (pid == 0) {
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (std::string &arg : args)
                argv.push_back(arg.data());
            argv.push_back(nullptr);
            ::execv(exe.c_str(), argv.data());
            std::fprintf(stderr, "hh_sweep: execv failed\n");
            ::_exit(127);
        }
        return pid;
    };
}

dispatch::SupervisorConfig
supervisorConfig(const SweepOptions &opts, size_t shard_count,
                 const char *prefix, const char *ledger_default,
                 fault::FaultInjector *injector)
{
    dispatch::SupervisorConfig cfg;
    cfg.ledgerPath = opts.ledger.empty()
        ? opts.outDir + "/" + ledger_default : opts.ledger;
    cfg.artifactDir = opts.outDir;
    cfg.artifactPrefix = prefix;
    cfg.leaseSeconds = opts.leaseSeconds;
    cfg.maxAttempts = opts.maxAttempts;
    cfg.backoff.baseMs = opts.backoffMs;
    cfg.backoff.capMs = opts.backoffCapMs;
    cfg.maxParallel = opts.jobs != 0
        ? opts.jobs : static_cast<uint32_t>(shard_count);
    cfg.forceQuarantine = opts.quarantine;
    cfg.injector = injector;
    return cfg;
}

void
printSweepStats(const dispatch::Supervisor &sup)
{
    const dispatch::SweepStats &s = sup.stats();
    std::fprintf(stderr,
                 "hh_sweep: launches=%llu retries=%llu "
                 "leaseExpiries=%llu spawnFailures=%llu "
                 "tornArtifacts=%llu heartbeatLoss=%llu "
                 "quarantines=%llu mergeBusyRetries=%llu "
                 "ledgerSaves=%llu\n",
                 static_cast<unsigned long long>(s.launches),
                 static_cast<unsigned long long>(s.retries),
                 static_cast<unsigned long long>(s.leaseExpiries),
                 static_cast<unsigned long long>(s.spawnFailures),
                 static_cast<unsigned long long>(s.tornArtifacts),
                 static_cast<unsigned long long>(
                     s.heartbeatLossFaults),
                 static_cast<unsigned long long>(s.quarantines),
                 static_cast<unsigned long long>(s.mergeBusyRetries),
                 static_cast<unsigned long long>(s.ledgerSaves));
}

int
cmdSweep(const SweepOptions &opts, const char *argv0)
{
    if (opts.shards == 0) {
        std::fprintf(stderr, "hh_sweep sweep: --shards must be > 0\n");
        return 2;
    }
    (void)::mkdir(opts.outDir.c_str(), 0777); // EEXIST is fine
    Campaign campaign = buildCampaign(opts);
    const uint64_t fingerprint =
        campaign.attack->campaignFingerprint();
    const std::vector<shard::ShardRange> ranges =
        shard::planShards(opts.trials, opts.shards);

    // Chaos plan for the dispatch.* sites. Host sites in the plan are
    // irrelevant here: the supervisor only consults dispatch sites.
    std::unique_ptr<fault::FaultInjector> injector;
    if (opts.dispatchFaultIntensity > 0.0)
        injector = std::make_unique<fault::FaultInjector>(
            fault::FaultPlan::randomized(opts.dispatchFaultSeed,
                                         opts.dispatchFaultIntensity),
            base::mix64(fingerprint, opts.dispatchFaultSeed));

    dispatch::Supervisor sup(
        supervisorConfig(opts, ranges.size(), "shard_", "ledger.bin",
                         injector.get()),
        forkLauncher(selfExe(argv0), opts));
    const base::Status opened =
        sup.openSweep(fingerprint, opts.trials, ranges, opts.resume);
    if (!opened.ok()) {
        std::fprintf(stderr, "hh_sweep: cannot open sweep: %s%s\n",
                     base::errorName(opened.error()),
                     opts.resume ? " (ledger mismatch or unreadable)"
                                 : "");
        return 1;
    }
    auto report = sup.runSweep();
    printSweepStats(sup);
    if (!report) {
        std::fprintf(stderr, "hh_sweep: sweep failed: %s\n",
                     base::errorName(report.error()));
        return 1;
    }
    if (!report->partial()) {
        printResult(fingerprint, opts.trials, report->result);
        return 0;
    }
    std::vector<std::string> healthy;
    for (const dispatch::ShardJob &job : sup.ledger().jobs) {
        if (job.state == dispatch::ShardState::Done)
            healthy.push_back(sup.artifactPath(job.index));
    }
    const std::string gap_path = opts.gapManifest.empty()
        ? opts.outDir + "/gaps.json"
        : opts.gapManifest;
    return finishDegraded(opts, gap_path, healthy, *report);
}

int
cmdHeal(const SweepOptions &opts, const char *argv0)
{
    if (opts.gaps.empty()) {
        std::fprintf(stderr, "hh_sweep heal: --gaps=FILE required\n");
        return 2;
    }
    auto manifest = dispatch::loadGapManifest(opts.gaps);
    if (!manifest) {
        std::fprintf(stderr,
                     "hh_sweep heal: cannot load '%s': %s\n",
                     opts.gaps.c_str(),
                     base::errorName(manifest.error()));
        return 1;
    }

    // Rebuild the campaign the manifest describes; supervisor knobs
    // stay CLI-controlled.
    SweepOptions copts = opts;
    copts.trials = static_cast<unsigned>(manifest->campaign.trials);
    copts.threads = manifest->campaign.threads;
    copts.seed = manifest->campaign.seed;
    copts.hostBytes = manifest->campaign.hostGib * 1_GiB;
    copts.faultSeed = manifest->campaign.faultSeed;
    copts.faultIntensity = manifest->campaign.faultIntensity;
    copts.checkpointEvery = manifest->campaign.checkpointEvery;
    Campaign campaign = buildCampaign(copts);
    const uint64_t fingerprint =
        campaign.attack->campaignFingerprint();
    if (fingerprint != manifest->campaignFingerprint) {
        std::fprintf(stderr,
                     "hh_sweep heal: rebuilt campaign fingerprint "
                     "%016llx does not match the manifest's %016llx\n",
                     static_cast<unsigned long long>(fingerprint),
                     static_cast<unsigned long long>(
                         manifest->campaignFingerprint));
        return 1;
    }

    // The healthy artifacts must still be exactly what the manifest
    // promised: terminal, complete and of this campaign.
    std::vector<shard::ShardResult> shards;
    shards.reserve(manifest->artifacts.size()
                   + manifest->missing.size());
    for (const std::string &file : manifest->artifacts) {
        auto loaded = shard::loadShard(file);
        if (!loaded || !loaded->terminal || !loaded->complete()
            || loaded->manifest.campaignFingerprint != fingerprint) {
            std::fprintf(stderr,
                         "hh_sweep heal: healthy artifact '%s' is no "
                         "longer usable\n",
                         file.c_str());
            return 1;
        }
        shards.push_back(std::move(*loaded));
    }

    if (!manifest->missing.empty()) {
        (void)::mkdir(opts.outDir.c_str(), 0777); // EEXIST is fine
        std::unique_ptr<fault::FaultInjector> injector;
        if (opts.dispatchFaultIntensity > 0.0)
            injector = std::make_unique<fault::FaultInjector>(
                fault::FaultPlan::randomized(
                    opts.dispatchFaultSeed,
                    opts.dispatchFaultIntensity),
                base::mix64(fingerprint, opts.dispatchFaultSeed));
        dispatch::Supervisor sup(
            supervisorConfig(opts, manifest->missing.size(), "heal_",
                             "heal_ledger.bin", injector.get()),
            forkLauncher(selfExe(argv0), copts));
        const base::Status opened = sup.openSweep(
            fingerprint, copts.trials, manifest->missing, opts.resume);
        if (!opened.ok()) {
            std::fprintf(stderr,
                         "hh_sweep heal: cannot open: %s\n",
                         base::errorName(opened.error()));
            return 1;
        }
        auto healed = sup.runSweep();
        printSweepStats(sup);
        if (!healed) {
            std::fprintf(stderr, "hh_sweep heal: failed: %s\n",
                         base::errorName(healed.error()));
            return 1;
        }
        for (const dispatch::ShardJob &job : sup.ledger().jobs) {
            if (job.state != dispatch::ShardState::Done)
                continue;
            auto loaded =
                shard::loadShard(sup.artifactPath(job.index));
            if (!loaded) {
                std::fprintf(stderr,
                             "hh_sweep heal: lost heal artifact "
                             "'%s'\n",
                             sup.artifactPath(job.index).c_str());
                return 1;
            }
            shards.push_back(std::move(*loaded));
        }
        if (sup.ledger().quarantined() > 0) {
            // Still degraded: leave an updated manifest behind so a
            // later heal run only chases what remains.
            shard::MergePolicy policy;
            policy.allowPartial = true;
            auto report =
                shard::mergeShards(std::move(shards), policy);
            if (!report) {
                std::fprintf(stderr,
                             "hh_sweep heal: merge failed: %s\n",
                             base::errorName(report.error()));
                return 1;
            }
            std::vector<std::string> healthy = manifest->artifacts;
            for (const dispatch::ShardJob &job : sup.ledger().jobs) {
                if (job.state == dispatch::ShardState::Done)
                    healthy.push_back(sup.artifactPath(job.index));
            }
            return finishDegraded(copts, opts.gaps, healthy, *report);
        }
    }

    auto merged = shard::mergeShards(std::move(shards));
    if (!merged) {
        std::fprintf(stderr, "hh_sweep heal: merge failed: %s\n",
                     base::errorName(merged.error()));
        return 1;
    }
    printResult(fingerprint, copts.trials, *merged);
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: hh_sweep <single|run|merge|sweep|heal> [flags]\n"
        "  single  run the whole campaign in-process, print dump\n"
        "  run     run one shard: --shard=I/K | --range=B:E, "
        "--out=FILE\n"
        "  merge   merge shard artifacts: FILE... "
        "[--allow-partial --stale-seconds=S --gap-manifest=FILE]\n"
        "  sweep   supervise --shards=K workers, merge, print\n"
        "  heal    finish a degraded sweep: --gaps=FILE\n"
        "campaign flags: --trials=N --threads=N --seed=N "
        "--host-gib=N\n"
        "       --fault-seed=N --fault-intensity=X\n"
        "       --checkpoint-every=N --resume --stop-after=N\n"
        "       --heartbeat=FILE (run) --out-dir=DIR (sweep/heal)\n"
        "supervisor flags: --jobs=P --lease-seconds=X "
        "--max-attempts=M\n"
        "       --backoff-ms=N --backoff-cap-ms=N --ledger=FILE\n"
        "       --gap-manifest=FILE --quarantine=I[,J...]\n"
        "       --dispatch-fault-seed=N "
        "--dispatch-fault-intensity=X\n"
        "exit: 0 ok, 1 error, 2 usage, 3 stopped, 4 degraded "
        "(gap manifest written)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    if (cmd == "single")
        return cmdSingle(opts);
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "merge")
        return cmdMerge(opts);
    if (cmd == "sweep")
        return cmdSweep(opts, argv[0]);
    if (cmd == "heal")
        return cmdHeal(opts, argv[0]);
    usage();
    return 2;
}
