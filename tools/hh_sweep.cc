/**
 * @file
 * Sharded multi-process campaign sweep driver.
 *
 * Splits a Monte-Carlo campaign of N trials into contiguous
 * seed-range shards, runs each shard as an independent OS process
 * (each one profiles its own host -- the campaign is a pure function
 * of the configuration, so every process derives the identical
 * host-physical profile and fingerprint), and merges the shard
 * artifacts through hh::shard::mergeShards. The merged result is
 * bitwise-identical to a single-process runAttempts() at any shard
 * count x thread count, which `single` and `merge` make checkable by
 * printing the same canonical dump: CI byte-diffs the two
 * (docs/distributed_sweeps.md).
 *
 * Subcommands:
 *   single                  run the campaign in-process, print dump
 *   run   --shard=I/K --out=F  run shard I of K, write artifact F
 *   merge FILE...           merge shard artifacts, print dump
 *   sweep --shards=K        fork K `run` children, merge, print dump
 *
 * Shared flags: --trials=N --threads=N --seed=N --host-gib=N
 *   --fault-seed=N --fault-intensity=X (X > 0 installs a randomized
 *   FaultPlan) --checkpoint-every=N --resume --stop-after=N
 *
 * The dump deliberately excludes resumedTrials (bookkeeping of *how*
 * a result was computed, not *what* it is -- the same masking
 * snapshot::verifyResumeIdentity applies) and renders every double as
 * its IEEE-754 bit pattern: a byte-equal dump means a bitwise-equal
 * result.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <bit>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "hyperhammer/hyperhammer.h"

using namespace hh;

namespace {

struct SweepOptions
{
    unsigned trials = 8;
    unsigned threads = 1;
    uint64_t seed = 1;
    uint64_t hostBytes = 0;
    uint64_t faultSeed = 0;
    double faultIntensity = 0.0;
    uint64_t checkpointEvery = 0;
    bool resume = false;
    uint64_t stopAfter = 0;
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    std::string out;
    std::string outDir = ".";
    unsigned shards = 4;
    std::vector<std::string> files;

    static SweepOptions
    parse(int argc, char **argv)
    {
        SweepOptions opts;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&arg](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                return arg.compare(0, len, prefix) == 0
                    ? arg.c_str() + len : nullptr;
            };
            if (const char *v = value("--trials="))
                opts.trials = static_cast<unsigned>(
                    std::strtoul(v, nullptr, 0));
            else if (const char *v2 = value("--threads="))
                opts.threads = static_cast<unsigned>(
                    std::strtoul(v2, nullptr, 0));
            else if (const char *v3 = value("--seed="))
                opts.seed = std::strtoull(v3, nullptr, 0);
            else if (const char *v4 = value("--host-gib="))
                opts.hostBytes =
                    std::strtoull(v4, nullptr, 0) * 1_GiB;
            else if (const char *v5 = value("--fault-seed="))
                opts.faultSeed = std::strtoull(v5, nullptr, 0);
            else if (const char *v6 = value("--fault-intensity="))
                opts.faultIntensity = std::strtod(v6, nullptr);
            else if (const char *v7 = value("--checkpoint-every="))
                opts.checkpointEvery = std::strtoull(v7, nullptr, 0);
            else if (const char *v8 = value("--stop-after="))
                opts.stopAfter = std::strtoull(v8, nullptr, 0);
            else if (const char *v9 = value("--shard=")) {
                // I/K, e.g. --shard=2/4.
                char *slash = nullptr;
                opts.shardIndex = static_cast<unsigned>(
                    std::strtoul(v9, &slash, 0));
                if (slash == nullptr || *slash != '/') {
                    std::fprintf(stderr,
                                 "hh_sweep: bad --shard (want I/K)\n");
                    std::exit(2);
                }
                opts.shardCount = static_cast<unsigned>(
                    std::strtoul(slash + 1, nullptr, 0));
            } else if (const char *v10 = value("--out="))
                opts.out = v10;
            else if (const char *v11 = value("--out-dir="))
                opts.outDir = v11;
            else if (const char *v12 = value("--shards="))
                opts.shards = static_cast<unsigned>(
                    std::strtoul(v12, nullptr, 0));
            else if (arg == "--resume")
                opts.resume = true;
            else if (arg.rfind("--", 0) == 0) {
                std::fprintf(stderr, "hh_sweep: unknown flag %s\n",
                             arg.c_str());
                std::exit(2);
            } else
                opts.files.push_back(arg);
        }
        return opts;
    }
};

sys::SystemConfig
campaignHostConfig(const SweepOptions &opts)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(opts.seed).withMemory(
        opts.hostBytes ? opts.hostBytes : 1_GiB);
    // Densify weak cells so attempts have material to work with at
    // this scale (same factor the orchestrator tests and the fault
    // soak use).
    cfg.dram.fault.weakCellsPerRow *= 4.0;
    if (opts.faultIntensity > 0.0)
        cfg = cfg.withFaults(fault::FaultPlan::randomized(
            opts.faultSeed, opts.faultIntensity));
    return cfg;
}

vm::VmConfig
campaignVmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

attack::AttackConfig
campaignAttackConfig(const SweepOptions &opts)
{
    attack::AttackConfig cfg;
    cfg.maxAttempts = opts.trials;
    cfg.steering.exhaustMappings = 2'500;
    return cfg;
}

/** One per-process campaign context: host + profiled attack. */
struct Campaign
{
    std::unique_ptr<sys::HostSystem> host;
    std::unique_ptr<attack::HyperHammerAttack> attack;
};

Campaign
buildCampaign(const SweepOptions &opts)
{
    Campaign campaign;
    campaign.host =
        std::make_unique<sys::HostSystem>(campaignHostConfig(opts));
    campaign.attack = std::make_unique<attack::HyperHammerAttack>(
        *campaign.host, campaignVmConfig(),
        campaign.host->dram().mapping(), campaignAttackConfig(opts));
    campaign.attack->profilePhase();
    if (campaign.attack->hostProfile().empty()) {
        std::fprintf(stderr,
                     "hh_sweep: profiling found no exploitable bits "
                     "at this configuration; nothing to sweep\n");
        std::exit(1);
    }
    return campaign;
}

uint64_t
bits64(double x)
{
    return std::bit_cast<uint64_t>(x);
}

void
printStats(const char *name, const base::RunningStats &stats)
{
    const base::RunningStats::Raw raw = stats.raw();
    std::printf("stat %s n=%llu mean=%016llx m2=%016llx "
                "total=%016llx min=%016llx max=%016llx\n",
                name, static_cast<unsigned long long>(raw.n),
                static_cast<unsigned long long>(bits64(raw.mean)),
                static_cast<unsigned long long>(bits64(raw.m2)),
                static_cast<unsigned long long>(bits64(raw.total)),
                static_cast<unsigned long long>(bits64(raw.min)),
                static_cast<unsigned long long>(bits64(raw.max)));
}

/** The canonical dump `single` and `merge` both print. */
void
printResult(uint64_t fingerprint, unsigned trials,
            const attack::AttackResult &result)
{
    std::printf("campaign fingerprint=%016llx trials=%u\n",
                static_cast<unsigned long long>(fingerprint), trials);
    std::printf("result success=%d attempts=%u status=%s degraded=%d "
                "reprofiles=%u faultsInjected=%llu totalTime=%llu "
                "profilingTime=%llu\n",
                result.success ? 1 : 0, result.attempts,
                base::errorName(result.status.error()),
                result.degraded ? 1 : 0, result.reprofiles,
                static_cast<unsigned long long>(result.faultsInjected),
                static_cast<unsigned long long>(result.totalTime),
                static_cast<unsigned long long>(result.profilingTime));
    printStats("attemptSeconds", result.stats.attemptSeconds);
    printStats("bitsTargeted", result.stats.bitsTargeted);
    printStats("releasedSubBlocks", result.stats.releasedSubBlocks);
    printStats("demotions", result.stats.demotions);
    printStats("changedPages", result.stats.changedPages);
    printStats("epteCandidates", result.stats.epteCandidates);
    printStats("retries", result.stats.retries);
    for (size_t i = 0; i < result.outcomes.size(); ++i) {
        const attack::AttemptOutcome &o = result.outcomes[i];
        std::printf(
            "outcome %zu success=%d bits=%u released=%llu "
            "demotions=%llu changed=%llu epte=%llu duration=%llu "
            "retries=%u backoff=%llu faults=%llu\n",
            i, o.success ? 1 : 0, o.bitsTargeted,
            static_cast<unsigned long long>(o.releasedSubBlocks),
            static_cast<unsigned long long>(o.demotions),
            static_cast<unsigned long long>(o.changedPages),
            static_cast<unsigned long long>(o.epteCandidates),
            static_cast<unsigned long long>(o.duration), o.retries,
            static_cast<unsigned long long>(o.backoffTime),
            static_cast<unsigned long long>(o.faultsFired));
    }
}

int
cmdSingle(const SweepOptions &opts)
{
    Campaign campaign = buildCampaign(opts);
    snapshot::CheckpointPolicy policy;
    const attack::AttackResult result =
        campaign.attack->runAttempts(opts.trials, opts.threads,
                                     policy);
    printResult(campaign.attack->campaignFingerprint(), opts.trials,
                result);
    return 0;
}

int
cmdRun(const SweepOptions &opts)
{
    if (opts.out.empty()) {
        std::fprintf(stderr, "hh_sweep run: --out=FILE required\n");
        return 2;
    }
    if (opts.shardIndex >= opts.shardCount) {
        std::fprintf(stderr, "hh_sweep run: shard %u out of range "
                             "(%u shards)\n",
                     opts.shardIndex, opts.shardCount);
        return 2;
    }
    Campaign campaign = buildCampaign(opts);
    const std::vector<shard::ShardRange> ranges =
        shard::planShards(opts.trials, opts.shardCount);
    const shard::ShardRange range = ranges[opts.shardIndex];

    snapshot::CheckpointPolicy policy;
    if (opts.checkpointEvery > 0) {
        policy.path = opts.out + ".ckpt";
        policy.everyTrials = opts.checkpointEvery;
        policy.resume = opts.resume;
        policy.stopAfterTrials = opts.stopAfter;
    }
    std::fprintf(stderr,
                 "hh_sweep: shard %u/%u trials [%llu, %llu)\n",
                 opts.shardIndex, opts.shardCount,
                 static_cast<unsigned long long>(range.begin),
                 static_cast<unsigned long long>(range.end));
    attack::TrialRangeResult ranged = campaign.attack->runTrialRange(
        range.begin, range.end, opts.threads, policy);
    if (ranged.stopped) {
        std::fprintf(stderr,
                     "hh_sweep: shard stopped after %zu trials; "
                     "rerun with --resume to finish\n",
                     ranged.outcomes.size());
        return 3; // incomplete by request (--stop-after test hook)
    }

    shard::ShardResult result;
    result.manifest.campaignFingerprint =
        campaign.attack->campaignFingerprint();
    result.manifest.totalTrials = opts.trials;
    result.manifest.range = range;
    result.outcomes = std::move(ranged.outcomes);
    const base::Status saved = shard::saveShard(opts.out, result);
    if (!saved.ok()) {
        std::fprintf(stderr, "hh_sweep: cannot write shard '%s': %s\n",
                     opts.out.c_str(),
                     base::errorName(saved.error()));
        return 1;
    }
    std::fprintf(stderr, "hh_sweep: wrote %s (%zu outcomes)\n",
                 opts.out.c_str(), result.outcomes.size());
    return 0;
}

int
mergeAndPrint(const SweepOptions &opts,
              const std::vector<std::string> &files)
{
    std::vector<shard::ShardResult> shards;
    shards.reserve(files.size());
    for (const std::string &file : files) {
        auto loaded = shard::loadShard(file);
        if (!loaded) {
            std::fprintf(stderr, "hh_sweep: cannot load '%s': %s\n",
                         file.c_str(),
                         base::errorName(loaded.error()));
            return 1;
        }
        shards.push_back(std::move(*loaded));
    }
    const uint64_t fingerprint =
        shards.empty() ? 0 : shards.front().manifest.campaignFingerprint;
    const uint64_t total =
        shards.empty() ? 0 : shards.front().manifest.totalTrials;
    auto merged = shard::mergeShards(std::move(shards));
    if (!merged) {
        std::fprintf(stderr, "hh_sweep: merge failed: %s\n",
                     base::errorName(merged.error()));
        return 1;
    }
    (void)opts;
    printResult(fingerprint, static_cast<unsigned>(total), *merged);
    return 0;
}

int
cmdMerge(const SweepOptions &opts)
{
    if (opts.files.empty()) {
        std::fprintf(stderr, "hh_sweep merge: no shard files given\n");
        return 2;
    }
    return mergeAndPrint(opts, opts.files);
}

std::string
selfExe(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

int
cmdSweep(const SweepOptions &opts, const char *argv0)
{
    if (opts.shards == 0) {
        std::fprintf(stderr, "hh_sweep sweep: --shards must be > 0\n");
        return 2;
    }
    (void)::mkdir(opts.outDir.c_str(), 0777); // EEXIST is fine
    const std::string exe = selfExe(argv0);

    std::vector<std::string> files;
    std::vector<pid_t> pids;
    for (unsigned i = 0; i < opts.shards; ++i) {
        const std::string out =
            opts.outDir + "/shard_" + std::to_string(i) + ".bin";
        files.push_back(out);
        std::vector<std::string> args = {
            exe,
            "run",
            "--trials=" + std::to_string(opts.trials),
            "--threads=" + std::to_string(opts.threads),
            "--seed=" + std::to_string(opts.seed),
            "--fault-seed=" + std::to_string(opts.faultSeed),
            "--fault-intensity=" + std::to_string(opts.faultIntensity),
            "--shard=" + std::to_string(i) + "/"
                + std::to_string(opts.shards),
            "--out=" + out,
        };
        if (opts.hostBytes)
            args.push_back("--host-gib="
                           + std::to_string(opts.hostBytes / 1_GiB));
        if (opts.checkpointEvery)
            args.push_back("--checkpoint-every="
                           + std::to_string(opts.checkpointEvery));

        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "hh_sweep: fork failed\n");
            return 1;
        }
        if (pid == 0) {
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (std::string &arg : args)
                argv.push_back(arg.data());
            argv.push_back(nullptr);
            ::execv(exe.c_str(), argv.data());
            std::fprintf(stderr, "hh_sweep: execv failed\n");
            ::_exit(127);
        }
        pids.push_back(pid);
    }

    bool failed = false;
    for (size_t i = 0; i < pids.size(); ++i) {
        int status = 0;
        if (::waitpid(pids[i], &status, 0) < 0
            || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "hh_sweep: shard %zu child failed "
                         "(status %d)\n",
                         i, status);
            failed = true;
        }
    }
    if (failed)
        return 1;
    return mergeAndPrint(opts, files);
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: hh_sweep <single|run|merge|sweep> [flags]\n"
        "  single  run the whole campaign in-process, print dump\n"
        "  run     run one shard: --shard=I/K --out=FILE\n"
        "  merge   merge shard artifacts: FILE...\n"
        "  sweep   fork --shards=K `run` children, merge, print\n"
        "flags: --trials=N --threads=N --seed=N --host-gib=N\n"
        "       --fault-seed=N --fault-intensity=X\n"
        "       --checkpoint-every=N --resume --stop-after=N\n"
        "       --out-dir=DIR (sweep)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const SweepOptions opts = SweepOptions::parse(argc, argv);
    if (cmd == "single")
        return cmdSingle(opts);
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "merge")
        return cmdMerge(opts);
    if (cmd == "sweep")
        return cmdSweep(opts, argv[0]);
    usage();
    return 2;
}
