#!/usr/bin/env python3
"""hh-lint: HyperHammer's determinism & invariant linter.

The simulator's headline guarantee -- bitwise-identical Monte-Carlo
results at any thread count (DESIGN.md section 3.2) -- dies by a
thousand cuts: a stray rand(), a wall-clock timestamp, an iteration
over a hash table feeding a merge. Compilers accept all of those;
hh-lint rejects them at CI time.

Rules (see docs/static_analysis.md for the rationale and how to add one):

  raw-rand            non-deterministic randomness outside src/base/rng.h
  wall-clock          host time sources outside src/base/sim_clock.*
  unordered-iteration range-for over unordered_{map,set}: order is
                      implementation-defined, so anything built from it
                      is not reproducible
  float-accumulation  float/double compound accumulation outside
                      src/base/stats.h (order-sensitive rounding)
  missing-nodiscard   Status/Expected-returning declarations in headers
                      without [[nodiscard]]
  naked-new           raw new/delete (ownership must be RAII)
  fault-site          every HH_FAULT_POINT must name a FaultSite
                      registered in src/fault/fault_sites.def, and each
                      site may be consumed by at most one injection
                      point (site identity seeds the fault stream)
  snapshot-version    every saveState() body is hashed and pinned in
                      tools/snapshot_manifest.json; changing a
                      serialized layout without bumping
                      kSnapshotFormatVersion would let old snapshots be
                      silently reinterpreted instead of rejected
  no-deep-world-copy  a copy constructor on a world-state type
                      (HostSystem, DramSystem, BuddyAllocator,
                      MemoryBackend, FrameStore) that is not = delete:
                      worlds duplicate through their O(touched-pages)
                      CoW fork paths, never by deep copy
  bad-waiver          an hh-lint waiver without a justification

After an intentional format change: bump kSnapshotFormatVersion in
src/snapshot/snapshot_format.h, then regenerate the manifest with
`hh_lint.py --update-snapshot-manifest` (it refuses to re-pin while
the version is unchanged).

Waivers: append `// hh-lint: allow(rule-a,rule-b) -- why it is safe`
to the offending line (or put the comment alone on the line above).
A waiver without the `-- why` justification does not suppress anything
and is itself reported as bad-waiver.

Exit codes: 0 clean, 1 findings, 2 usage/config error.
"""

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None

RULES = {
    "raw-rand": "non-deterministic randomness; use base::Rng / "
                "base::SeedSequence (src/base/rng.h)",
    "wall-clock": "host time source; charge virtual time to "
                  "base::SimClock (src/base/sim_clock.h)",
    "unordered-iteration": "iteration order over unordered containers is "
                           "implementation-defined; iterate a sorted copy "
                           "or a deterministic index instead",
    "float-accumulation": "order-sensitive floating-point accumulation; "
                          "use base::RunningStats (src/base/stats.h)",
    "missing-nodiscard": "Status/Expected return silently discardable; "
                         "declare it [[nodiscard]]",
    "naked-new": "raw new/delete; use std::make_unique / containers "
                 "so ownership is RAII",
    "fault-site": "HH_FAULT_POINT site must be registered in "
                  "src/fault/fault_sites.def and consumed by exactly "
                  "one injection point",
    "snapshot-version": "serialized saveState() layout changed without "
                        "a kSnapshotFormatVersion bump; bump it and run "
                        "hh_lint.py --update-snapshot-manifest",
    "no-deep-world-copy": "world-state types clone via their CoW fork "
                          "paths (fork()/forkTrial()/forkFrom()); "
                          "declare the copy constructor = delete",
    "shard-merge-only": "campaign outcome aggregation outside the "
                        "sanctioned merge path; fold outcomes through "
                        "HyperHammerAttack::aggregateOutcomes / "
                        "shard::mergeShards so sharded and "
                        "single-process results stay bitwise-identical",
    "bad-waiver": "hh-lint waiver without a `-- justification`",
}

# Stable rule identifiers for the shared machine-readable report format
# (REPORT_SCHEMA below). IDs are append-only: a retired rule's ID is
# never reused, so downstream consumers can key on them forever.
RULE_IDS = {
    "raw-rand": "HHL001",
    "wall-clock": "HHL002",
    "unordered-iteration": "HHL003",
    "float-accumulation": "HHL004",
    "missing-nodiscard": "HHL005",
    "naked-new": "HHL006",
    "fault-site": "HHL007",
    "snapshot-version": "HHL008",
    "no-deep-world-copy": "HHL009",
    "shard-merge-only": "HHL010",
    "bad-waiver": "HHL011",
}

# Rules owned by the AST analyzer (tools/hh_analyze.py). They share
# hh-lint's waiver syntax and the [rules.*] config namespace, so the
# waiver parser and config loader must accept them; hh-lint itself
# never checks them.
ANALYZER_RULES = (
    "snapshot-field-coverage",
    "determinism-taint",
    "status-discard",
    "guarded-field-completeness",
)

# Version of the JSON report envelope shared by hh-lint and hh-analyze;
# one CI step can merge both reports because `schema`, `tool`, and the
# per-finding fields line up.
REPORT_SCHEMA = 2


def report_payload(tool, findings, rule_ids):
    """The shared machine-readable report envelope."""
    return {
        "schema": REPORT_SCHEMA,
        "tool": tool,
        "findings": [{"file": f.path, "line": f.line, "rule": f.rule,
                      "id": rule_ids.get(f.rule, "HHX000"),
                      "message": f.message} for f in findings],
    }

WAIVER_RE = re.compile(
    r"//\s*hh-lint:\s*allow\(([^)]*)\)(?:\s*--\s*(\S[^\n]*))?")
EXPECT_RE = re.compile(r"//\s*expect:\s*([\w\-, ]+)")

RAW_RAND_RE = re.compile(
    r"(?<![\w.:>])(?:rand|srand|random|drand48|lrand48)\s*\("
    r"|\brandom_device\b|\bmt19937(?:_64)?\b|\bminstd_rand0?\b"
    r"|\bdefault_random_engine\b")
# Bare `clock(` is not matched: the simulator's own SimClock accessors
# are named clock(). Qualified std::/:: spellings still are.
WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|(?<![\w.:>])(?:time|clock_gettime|gettimeofday)\s*\("
    r"|(?:std::|[^\w:]::)clock\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;(){}]*>\s+(\w+)\s*[;{=(]")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[;={,)]")
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+)*(?:base::)?"
    r"(?:Status|StatusOr|Expected)(?:<[^;]*)?"
    r"(?:\s+\w+\s*\(|\s*$)")
NAKED_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(:<]")
NAKED_DELETE_RE = re.compile(r"(?<![\w.])delete(?:\s*\[\s*\])?\s+[\w(*]")
FAULT_POINT_RE = re.compile(r"\bHH_FAULT_POINT\s*\(")
FAULT_SITE_NAME_RE = re.compile(r"\bFaultSite\s*::\s*(\w+)")
FAULT_SITE_DEF_RE = re.compile(r"\bHH_FAULT_SITE\s*\(\s*(\w+)\s*,")
SAVE_STATE_DEF_RE = re.compile(r"\b(?:(\w+)\s*::\s*)?saveState\s*\(")
# Qualifiers allowed between a parameter list and the function body.
FUNC_BODY_OPEN_RE = re.compile(
    r"(?:\s|\bconst\b|\bnoexcept\b|\boverride\b|\bfinal\b)*\{")
SNAPSHOT_VERSION_RE = re.compile(r"\bkSnapshotFormatVersion\s*=\s*(\d+)")
CLASS_NAME_RE = re.compile(r"\b(?:class|struct)\s+(\w+)")
# World-state types whose duplication must go through the CoW fork
# paths. A copy-ctor *declaration* of one of these (first parameter a
# const reference to the same type) fires unless the same line deletes
# it; the tag-dispatched fork ctors take the source as their second
# parameter, so they never match.
WORLD_COPY_RE = re.compile(
    r"\b(HostSystem|DramSystem|BuddyAllocator|MemoryBackend|FrameStore)"
    r"\s*\(\s*(?:const\s+)?(?:\w+\s*::\s*)*\1\s*&(?!&)")
# Campaign outcome aggregation is a single code path
# (HyperHammerAttack::aggregateOutcomes, reached directly or through
# shard::mergeShards); folding BatchAggregates by hand -- a local
# accumulator's .add()/.merge(), or mutating an AttackResult's .stats
# -- forks the merge semantics and silently breaks the sharded-vs-
# single-process bitwise identity.
BATCH_AGG_DECL_RE = re.compile(r"\bBatchAggregates\s+(\w+)\s*[;{=(]")
STATS_MUTATE_RE = re.compile(
    r"\.\s*stats\s*\.\s*(?:add|merge)\s*\(")


def strip_code(text):
    """Blank out comments and string/char literals, preserving layout.

    Keeps every finding regex honest: a mention of rand() in a comment
    or a log string is not a finding.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == "'" and i > 0 and (text[i - 1].isalnum()
                                     or text[i - 1] == "_"):
            # C++14 digit separator (0x20'1234), not a char literal.
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (min(j, n) - i - 1)
                       + (quote if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message=None):
        self.path = str(path)
        self.line = line
        self.rule = rule
        self.message = message or RULES[rule]

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_waivers(raw_lines):
    """Map line number -> (set of waived rules, justified?).

    A comment-only waiver line also covers the next source line.
    """
    waivers = {}
    bad = []
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        justified = bool(m.group(2))
        unknown = rules - set(RULES) - set(ANALYZER_RULES)
        if unknown:
            bad.append(Finding(
                "?", idx, "bad-waiver",
                f"waiver names unknown rule(s): {', '.join(sorted(unknown))}"))
        if not justified:
            bad.append(Finding("?", idx, "bad-waiver"))
            rules = set()  # an unjustified waiver suppresses nothing
        targets = [idx]
        if line.lstrip().startswith("//"):
            targets.append(idx + 1)
        for t in targets:
            waivers.setdefault(t, set()).update(rules)
    return waivers, bad


def collect_names(regex, texts):
    names = set()
    for text in texts:
        for m in regex.finditer(text):
            names.add(m.group(1))
    return names


def range_for_re(names):
    if not names:
        return None
    alt = "|".join(re.escape(n) for n in sorted(names))
    # `for (... : name)` with optional object prefixes (this->, obj.).
    return re.compile(
        r"for\s*\([^;)]*:\s*(?:[\w\]\[]+(?:\.|->))*(?:" + alt + r")\s*\)")


def sibling_header_text(path):
    """Declarations often live in the .h next to a .cc; pull them in so
    member names declared there are known when linting the .cc."""
    if path.suffix not in (".cc", ".cpp"):
        return None
    for ext in (".h", ".hh"):
        header = path.with_suffix(ext)
        if header.exists():
            try:
                return strip_code(header.read_text(errors="replace"))
            except OSError:
                return None
    return None


def load_fault_registry(repo_root):
    """Site identifiers registered in src/fault/fault_sites.def, or
    None when the registry does not exist (pre-fault trees)."""
    def_path = repo_root / "src" / "fault" / "fault_sites.def"
    if not def_path.exists():
        return None
    stripped = strip_code(def_path.read_text(errors="replace"))
    return {m.group(1) for m in FAULT_SITE_DEF_RE.finditer(stripped)}


def scan_fault_points(path, stripped, waivers, enabled_for,
                      fault_registry, site_uses, findings):
    """Check every HH_FAULT_POINT call: the named site must be in the
    registry, and @p site_uses collects (site, path, line) so run_lint
    can flag a site consumed by more than one injection point."""
    if fault_registry is None or not enabled_for("fault-site"):
        return
    for m in FAULT_POINT_RE.finditer(stripped):
        lineno = stripped.count("\n", 0, m.start()) + 1
        if "fault-site" in waivers.get(lineno, set()):
            continue
        tail = stripped[m.end():m.end() + 256]
        close = tail.find(")")
        window = tail[:close] if close != -1 else tail
        site = FAULT_SITE_NAME_RE.search(window)
        if site is None:
            continue  # the macro definition or a pass-through argument
        name = site.group(1)
        if name not in fault_registry:
            findings.append(Finding(
                path, lineno, "fault-site",
                f"HH_FAULT_POINT names unregistered FaultSite '{name}'; "
                "add it to src/fault/fault_sites.def"))
        elif site_uses is not None:
            site_uses.setdefault(name, []).append((path, lineno))


def find_matching(text, open_idx, open_ch, close_ch):
    """Index of the delimiter closing text[open_idx], or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def scan_save_states(path, stripped, waivers, enabled_for, records):
    """Collect every saveState() *definition* in this file.

    Each record pins the function's normalized body under a stable hash
    so check_snapshot_manifest can detect a serialized-layout change
    that was not accompanied by a kSnapshotFormatVersion bump.
    Declarations and call sites (no `{` after the parameter list) are
    skipped.
    """
    if records is None or not enabled_for("snapshot-version"):
        return
    for m in SAVE_STATE_DEF_RE.finditer(stripped):
        params_close = find_matching(stripped, m.end() - 1, "(", ")")
        if params_close == -1:
            continue
        body = FUNC_BODY_OPEN_RE.match(stripped, params_close + 1)
        if body is None:
            continue  # declaration or call, not a definition
        body_close = find_matching(stripped, body.end() - 1, "{", "}")
        if body_close == -1:
            continue
        name = m.group(1)
        if not name:
            # Inline member definition: attribute it to the nearest
            # preceding class/struct.
            classes = CLASS_NAME_RE.findall(stripped[:m.start()])
            name = classes[-1] if classes else "?"
        lineno = stripped.count("\n", 0, m.start()) + 1
        normalized = " ".join(stripped[m.start():body_close + 1].split())
        records.append({
            "path": path,
            "line": lineno,
            "name": name,
            "hash": hashlib.sha256(
                normalized.encode()).hexdigest()[:16],
            "waived": "snapshot-version" in waivers.get(lineno, set()),
        })


def scan_snapshot_versions(path, stripped, waivers, versions):
    """Record every kSnapshotFormatVersion definition (normally one)."""
    if versions is None:
        return
    for m in SNAPSHOT_VERSION_RE.finditer(stripped):
        lineno = stripped.count("\n", 0, m.start()) + 1
        versions.append({
            "path": path,
            "line": lineno,
            "value": int(m.group(1)),
            "waived": "snapshot-version" in waivers.get(lineno, set()),
        })


def lint_file(path, enabled_for, fault_registry=None, site_uses=None,
              save_states=None, versions=None):
    """Return the findings for one file. @p enabled_for maps a rule name
    to True when this path is subject to it (allow_paths applied)."""
    raw = path.read_text(errors="replace")
    raw_lines = raw.splitlines()
    stripped_lines = strip_code(raw).splitlines()
    waivers, waiver_findings = parse_waivers(raw_lines)
    findings = []
    for f in waiver_findings:
        f.path = str(path)
        findings.append(f)

    texts = [strip_code(raw)]
    sibling = sibling_header_text(path)
    if sibling:
        texts.append(sibling)
    unordered_names = collect_names(UNORDERED_DECL_RE, texts)
    unordered_re = range_for_re(unordered_names)
    float_names = collect_names(FLOAT_DECL_RE, texts[:1])
    float_accum_re = None
    if float_names:
        alt = "|".join(re.escape(n) for n in sorted(float_names))
        float_accum_re = re.compile(
            r"(?<![\w.])(?:" + alt + r")\s*[+\-]=")
    agg_names = collect_names(BATCH_AGG_DECL_RE, texts)
    agg_mutate_re = None
    if agg_names:
        alt = "|".join(re.escape(n) for n in sorted(agg_names))
        agg_mutate_re = re.compile(
            r"(?<![\w.])(?:" + alt + r")\s*\.\s*(?:add|merge)\s*\(")

    scan_fault_points(path, texts[0], waivers, enabled_for,
                      fault_registry, site_uses, findings)
    scan_save_states(path, texts[0], waivers, enabled_for, save_states)
    scan_snapshot_versions(path, texts[0], waivers, versions)

    is_header = path.suffix in (".h", ".hh")

    def check(rule, lineno, hit):
        if not hit or not enabled_for(rule):
            return
        if rule in waivers.get(lineno, set()):
            return
        findings.append(Finding(path, lineno, rule))

    for lineno, line in enumerate(stripped_lines, start=1):
        check("raw-rand", lineno, RAW_RAND_RE.search(line))
        check("wall-clock", lineno, WALL_CLOCK_RE.search(line))
        if unordered_re:
            check("unordered-iteration", lineno, unordered_re.search(line))
        if float_accum_re:
            check("float-accumulation", lineno,
                  float_accum_re.search(line))
        if NAKED_NEW_RE.search(line) or NAKED_DELETE_RE.search(line):
            check("naked-new", lineno, True)
        if WORLD_COPY_RE.search(line) and "delete" not in line:
            check("no-deep-world-copy", lineno, True)
        if (STATS_MUTATE_RE.search(line)
                or (agg_mutate_re and agg_mutate_re.search(line))):
            check("shard-merge-only", lineno, True)
        if is_header and NODISCARD_DECL_RE.match(line):
            prev = stripped_lines[lineno - 2] if lineno >= 2 else ""
            if "[[nodiscard]]" not in line and "[[nodiscard]]" not in prev:
                check("missing-nodiscard", lineno, True)
    return findings


def load_config(path):
    defaults = {
        "roots": ["src", "bench", "tests", "examples", "include"],
        "extensions": [".h", ".hh", ".cc", ".cpp"],
        "exclude": [],
        "allow": {},  # rule -> [path prefixes it does not apply to]
    }
    if path is None:
        return defaults
    if tomllib is None:
        print("hh-lint: tomllib unavailable; cannot read config",
              file=sys.stderr)
        sys.exit(2)
    try:
        data = tomllib.loads(Path(path).read_text())
    except (OSError, tomllib.TOMLDecodeError) as err:
        print(f"hh-lint: bad config {path}: {err}", file=sys.stderr)
        sys.exit(2)
    lint = data.get("lint", {})
    for key in ("roots", "extensions", "exclude"):
        if key in lint:
            defaults[key] = list(lint[key])
    for rule, table in data.get("rules", {}).items():
        if rule not in RULES and rule not in ANALYZER_RULES:
            print(f"hh-lint: config names unknown rule '{rule}'",
                  file=sys.stderr)
            sys.exit(2)
        defaults["allow"][rule] = list(table.get("allow_paths", []))
    return defaults


def iter_files(paths, config, repo_root):
    exts = tuple(config["extensions"])
    exclude = [repo_root / e for e in config["exclude"]]
    for p in paths:
        p = Path(p)
        candidates = (sorted(p.rglob("*")) if p.is_dir() else [p])
        for f in candidates:
            if not (f.is_file() and f.suffix in exts):
                continue
            if any(f.is_relative_to(e) for e in exclude):
                continue
            yield f


def relpath(path, repo_root):
    try:
        return str(path.resolve().relative_to(repo_root.resolve()))
    except ValueError:
        return str(path)


def snapshot_manifest_path(paths, config, repo_root):
    """tools/snapshot_manifest.json, unless a scanned directory carries
    its own manifest -- the self-test fixtures do, so the rule can be
    exercised against a fixture manifest instead of the real one."""
    exclude = [repo_root / e for e in config["exclude"]]
    for p in paths:
        p = Path(p)
        if not p.is_dir():
            continue
        for m in sorted(p.rglob("snapshot_manifest.json")):
            if not any(m.is_relative_to(e) for e in exclude):
                return m
    return repo_root / "tools" / "snapshot_manifest.json"


def snapshot_struct_map(save_states, repo_root):
    """Key each saveState record as `<relpath>::<owner>` (with a `#N`
    suffix for same-named siblings in one file)."""
    counts = {}
    structs = {}
    for rec in save_states:
        base = f"{relpath(rec['path'], repo_root)}::{rec['name']}"
        counts[base] = counts.get(base, 0) + 1
        key = base if counts[base] == 1 else f"{base}#{counts[base]}"
        structs[key] = rec
    return structs


def check_snapshot_manifest(paths, config, repo_root, save_states,
                            versions, findings):
    """The snapshot-version rule's whole-tree pass.

    Inert when the scanned set defines no kSnapshotFormatVersion (a
    partial lint run, or a tree without the snapshot layer) or when no
    manifest exists yet.
    """
    manifest_path = snapshot_manifest_path(paths, config, repo_root)
    if not versions or not manifest_path.exists():
        return
    anchor = versions[0]

    def flag(rec, message):
        if rec.get("waived"):
            return
        findings.append(Finding(relpath(rec["path"], repo_root),
                                rec["line"], "snapshot-version", message))

    manifest_rel = relpath(manifest_path, repo_root)
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        flag(anchor, f"cannot read {manifest_rel}: {err}")
        return
    current = anchor["value"]
    if manifest.get("version") != current:
        flag(anchor,
             f"kSnapshotFormatVersion is {current} but {manifest_rel} "
             f"records {manifest.get('version')}; run hh_lint.py "
             "--update-snapshot-manifest to re-pin the layouts")
        return
    structs = snapshot_struct_map(save_states, repo_root)
    recorded = manifest.get("structs", {})
    for key, rec in structs.items():
        if key not in recorded:
            flag(rec, f"new serialized layout '{key}' is not pinned in "
                      f"{manifest_rel}; bump kSnapshotFormatVersion and "
                      "run --update-snapshot-manifest")
        elif recorded[key] != rec["hash"]:
            flag(rec, f"serialized layout of '{key}' changed but "
                      "kSnapshotFormatVersion did not; old snapshots "
                      "would be reinterpreted, not rejected -- bump it "
                      "and run --update-snapshot-manifest")
    for key in sorted(set(recorded) - set(structs)):
        flag(anchor, f"{manifest_rel} pins '{key}' but that saveState() "
                     "definition is gone; bump kSnapshotFormatVersion "
                     "and run --update-snapshot-manifest")


def collect_snapshot_state(paths, config, repo_root):
    """(save_states, versions) for --update-snapshot-manifest."""
    save_states, versions = [], []
    for f in iter_files(paths, config, repo_root):
        raw = f.read_text(errors="replace")
        stripped = strip_code(raw)
        waivers, _ = parse_waivers(raw.splitlines())
        scan_save_states(f, stripped, waivers, lambda rule: True,
                         save_states)
        scan_snapshot_versions(f, stripped, waivers, versions)
    return save_states, versions


def update_snapshot_manifest(config, repo_root):
    """Regenerate tools/snapshot_manifest.json at the tree's current
    format version. Refuses while layouts changed under an unchanged
    version: the bump is the point of the rule."""
    paths = [repo_root / r for r in config["roots"]]
    save_states, versions = collect_snapshot_state(paths, config,
                                                   repo_root)
    if not versions:
        print("hh-lint: no kSnapshotFormatVersion in the tree; "
              "nothing to pin", file=sys.stderr)
        return 2
    current = versions[0]["value"]
    structs = {key: rec["hash"] for key, rec in
               snapshot_struct_map(save_states, repo_root).items()}
    manifest_path = repo_root / "tools" / "snapshot_manifest.json"
    if manifest_path.exists():
        try:
            old = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            old = None
        if (old is not None and old.get("version") == current
                and old.get("structs") != structs):
            print("hh-lint: refusing to re-pin: serialized layouts "
                  "changed but kSnapshotFormatVersion is still "
                  f"{current}; bump it in src/snapshot/"
                  "snapshot_format.h first", file=sys.stderr)
            return 2
    manifest_path.write_text(json.dumps(
        {"version": current, "structs": dict(sorted(structs.items()))},
        indent=2) + "\n")
    print(f"hh-lint: pinned {len(structs)} serialized layout(s) at "
          f"format version {current} in "
          f"{relpath(manifest_path, repo_root)}")
    return 0


def run_lint(paths, config, repo_root):
    findings = []
    fault_registry = load_fault_registry(repo_root)
    site_uses = {}
    save_states = []
    versions = []
    for f in iter_files(paths, config, repo_root):
        rel = relpath(f, repo_root)

        def enabled_for(rule, rel=rel):
            return not any(rel.startswith(prefix)
                           for prefix in config["allow"].get(rule, []))

        for finding in lint_file(f, enabled_for, fault_registry,
                                 site_uses, save_states, versions):
            finding.path = rel
            findings.append(finding)
    check_snapshot_manifest(paths, config, repo_root, save_states,
                            versions, findings)
    for name in sorted(site_uses):
        uses = site_uses[name]
        first = f"{relpath(uses[0][0], repo_root)}:{uses[0][1]}"
        for path, line in uses[1:]:
            findings.append(Finding(
                relpath(path, repo_root), line, "fault-site",
                f"FaultSite '{name}' is already consumed at {first}; "
                "each site identifies exactly one injection point"))
    return findings


def self_test(fixture_dir, repo_root):
    """Assert each rule fires exactly where its fixture says it should."""
    config = {"roots": [], "extensions": [".h", ".hh", ".cc", ".cpp"],
              "exclude": [], "allow": {}}
    expected = set()
    for f in iter_files([fixture_dir], config, repo_root):
        rel = relpath(f, repo_root)
        for lineno, line in enumerate(
                f.read_text(errors="replace").splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    rule = rule.strip()
                    if rule not in RULES:
                        print(f"self-test: {rel}:{lineno} names unknown "
                              f"rule '{rule}'", file=sys.stderr)
                        return 2
                    expected.add((rel, lineno, rule))
    actual = {f.key() for f in run_lint([fixture_dir], config, repo_root)}
    missing = expected - actual
    surprise = actual - expected
    for path, line, rule in sorted(missing):
        print(f"self-test: MISSING  {path}:{line}: [{rule}] did not fire")
    for path, line, rule in sorted(surprise):
        print(f"self-test: SURPRISE {path}:{line}: [{rule}] fired "
              "without an // expect marker")
    uncovered = set(RULES) - {rule for _, _, rule in expected}
    for rule in sorted(uncovered):
        print(f"self-test: UNCOVERED rule [{rule}] has no fixture")
    if missing or surprise or uncovered:
        return 1
    print(f"self-test: ok ({len(expected)} expectations, "
          f"all {len(RULES)} rules covered)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="hh-lint", description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to lint (default: config roots)")
    parser.add_argument("--config", default=None,
                        help="path to .hh-lint.toml")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--report", default=None,
                        help="also write a JSON findings report here")
    parser.add_argument("--self-test", metavar="FIXTURE_DIR",
                        help="run the rule fixtures instead of linting")
    parser.add_argument("--update-snapshot-manifest", action="store_true",
                        help="re-pin saveState() layout hashes in "
                             "tools/snapshot_manifest.json (requires a "
                             "kSnapshotFormatVersion bump when layouts "
                             "changed)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent

    if args.list_rules:
        for rule, message in RULES.items():
            print(f"{rule}: {message}")
        return 0

    if args.self_test:
        return self_test(Path(args.self_test), repo_root)

    config_path = args.config
    if config_path is None:
        default = repo_root / ".hh-lint.toml"
        config_path = default if default.exists() else None
    config = load_config(config_path)

    if args.update_snapshot_manifest:
        return update_snapshot_manifest(config, repo_root)

    paths = args.paths or [repo_root / r for r in config["roots"]]
    findings = run_lint(paths, config, repo_root)
    findings.sort(key=Finding.key)

    payload = report_payload("hh-lint", findings, RULE_IDS)
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for f in findings:
            print(f)
        print(f"hh-lint: {len(findings)} finding(s)")
    if args.report:
        Path(args.report).write_text(json.dumps(payload, indent=2) + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
