#!/usr/bin/env python3
"""Perf/success-rate trend history over the BENCH_*.json reports.

The nightly soak appends each run's metrics to a BENCH_history.jsonl
artifact (one JSON object per line) and renders a markdown trend
summary into the job summary, so regressions that stay inside the
±20% gate of tools/check_bench.py are still visible as a drifting
sparkline before they trip it.

  bench_trend.py append --history BENCH_history.jsonl FILE...
      Append one history row holding the numeric metrics of every
      given BENCH_*.json (envelope env_* keys are kept only as row
      metadata: git sha, wall, RSS). Rows are stamped with
      $GITHUB_RUN_ID / $GITHUB_SHA when present.

  bench_trend.py report --history BENCH_history.jsonl
      Render a markdown table (latest value, delta vs previous run,
      min/max, unicode sparkline) for the tracked metrics to stdout
      and, under GitHub Actions, to $GITHUB_STEP_SUMMARY.

History rows are self-describing, so adding a bench or metric later
needs no migration: old rows simply lack the new keys.

Exit status: 0 unless the history file is unreadable or an input
report is malformed. stdlib only.
"""

import argparse
import json
import os
import pathlib
import sys
import time

# metric key (as stored: "<file stem>.<metric>") -> direction, for the
# report's trend table. Everything appended is kept in history; this
# only selects what the summary table shows.
TRACKED = [
    ("BENCH_clone.fork_speedup", "higher"),
    ("BENCH_table3.s1_trials_per_second", "higher"),
    ("BENCH_soak.success_rate", "higher"),
    ("BENCH_soak.degraded_rate", "lower"),
    ("BENCH_soak.faults_fired", "info"),
    ("BENCH_dispatch.shards_per_second", "higher"),
    ("BENCH_dispatch.retries", "info"),
    ("BENCH_dispatch.quarantines", "info"),
]

SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK[0] * len(values)
    return "".join(
        SPARK[min(len(SPARK) - 1,
                  int((v - lo) / (hi - lo) * (len(SPARK) - 1)))]
        for v in values)


def load_history(path: pathlib.Path) -> list[dict]:
    if not path.exists():
        return []
    rows = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            # A half-written trailing line (killed run) is dropped,
            # not fatal: history is an accumulating artifact.
            print(f"warning: skipping malformed history line",
                  file=sys.stderr)
    return rows


def cmd_append(args: argparse.Namespace) -> int:
    row = {
        "ts": int(time.time()),
        "git_sha": os.environ.get("GITHUB_SHA", ""),
        "run_id": os.environ.get("GITHUB_RUN_ID", ""),
        "metrics": {},
    }
    for file_name in args.files:
        path = pathlib.Path(file_name)
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            sys.exit(f"error: cannot read report {path}: {exc}")
        stem = path.stem  # BENCH_soak.json -> BENCH_soak
        if not row["git_sha"] and isinstance(
                report.get("env_git_sha"), str):
            row["git_sha"] = report["env_git_sha"]
        row["metrics"][stem] = {
            key: value for key, value in report.items()
            if isinstance(value, (int, float))
            and not key.startswith("env_")
        }
        for key in ("env_wall_seconds", "env_peak_rss_bytes"):
            if isinstance(report.get(key), (int, float)):
                row["metrics"][stem][key] = report[key]
    history = pathlib.Path(args.history)
    history.parent.mkdir(parents=True, exist_ok=True)
    with history.open("a", encoding="utf-8") as out:
        out.write(json.dumps(row, sort_keys=True) + "\n")
    print(f"appended run to {history} "
          f"({len(load_history(history))} rows)")
    return 0


def metric_series(rows: list[dict], key: str) -> list[float]:
    stem, metric = key.split(".", 1)
    series = []
    for row in rows:
        value = row.get("metrics", {}).get(stem, {}).get(metric)
        if isinstance(value, (int, float)):
            series.append(float(value))
    return series


def cmd_report(args: argparse.Namespace) -> int:
    rows = load_history(pathlib.Path(args.history))
    lines = [f"## Bench trends ({len(rows)} runs)", ""]
    if not rows:
        lines.append("No history yet.")
    else:
        lines += ["| metric | runs | latest | Δ vs prev | min | max "
                  "| trend |",
                  "|---|---|---|---|---|---|---|"]
        for key, direction in TRACKED:
            series = metric_series(rows, key)
            if not series:
                continue
            latest = series[-1]
            if len(series) > 1 and series[-2] != 0:
                delta = (latest - series[-2]) / abs(series[-2])
                delta_text = f"{delta:+.1%}"
            else:
                delta_text = "n/a"
            arrow = {"higher": "↑ better", "lower": "↓ better",
                     "info": ""}[direction]
            lines.append(
                f"| {key} {arrow} | {len(series)} | {latest:.4g} "
                f"| {delta_text} | {min(series):.4g} "
                f"| {max(series):.4g} | {sparkline(series[-30:])} |")
    text = "\n".join(lines)
    print(text)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(text + "\n\n")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    append = sub.add_parser("append",
                            help="append one run's reports to the "
                                 "history")
    append.add_argument("--history", required=True)
    append.add_argument("files", nargs="+",
                        metavar="BENCH_x.json")
    report = sub.add_parser("report",
                            help="render the markdown trend summary")
    report.add_argument("--history", required=True)
    args = parser.parse_args()
    if args.command == "append":
        return cmd_append(args)
    return cmd_report(args)


if __name__ == "__main__":
    sys.exit(main())
