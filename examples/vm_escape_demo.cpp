/**
 * @file
 * Example: the exploitation machinery end to end, deterministically
 * (Section 4.3).
 *
 * A real attack waits hundreds of attempts for a flipped EPTE to land
 * on an EPT page (see bench_table3). This demo removes that lottery:
 * after steering, it *induces* the lucky flip host-side -- rewriting
 * one sprayed EPTE exactly as Rowhammer would -- and then drives the
 * attacker's detection, identification, validation, escalation and
 * arbitrary host read/write, all through guest-legal operations.
 *
 * With --attempts=N the demo follows up with the real lottery: N
 * Monte-Carlo attack attempts on the parallel trial engine
 * (--threads=T workers, bitwise-identical results for any T).
 *
 * With --snapshot-demo it instead walks the crash-safety machinery:
 * a whole-world snapshot (host + VM) saved, restored into a fresh
 * process-equivalent and verified bitwise, then a checkpointed
 * campaign killed mid-run and resumed to the same result.
 *
 * Usage: vm_escape_demo [seed] [--attempts=N] [--threads=T]
 *                       [--snapshot-demo]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hyperhammer/hyperhammer.h"

using namespace hh;

namespace {

int
runSnapshotDemo(uint64_t seed)
{
    std::printf("== Snapshot & resume demo ==\n\n");
    const std::string world_path = "/tmp/vm_escape_world.snap";

    sys::SystemConfig cfg =
        sys::SystemConfig::s1(seed).withMemory(1_GiB);
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 1_GiB;
    vm_cfg.virtioMemPlugged = 640_MiB;

    // Build a world with recognisable guest state and snapshot it.
    {
        sys::HostSystem host(cfg);
        auto machine = host.createVm(vm_cfg);
        if (!machine->write64(GuestPhysAddr(0x13370), 0xf1a6ull).ok())
            return 1;
        const base::Status st =
            snapshot::saveWorld(host, {machine.get()}, world_path);
        if (!st.ok()) {
            std::printf("[snap]  saveWorld failed\n");
            return 1;
        }
        std::printf("[snap]  host + VM saved to %s\n",
                    world_path.c_str());
    }

    // Restore into a fresh host, as a restarted process would.
    {
        sys::HostSystem host(cfg);
        auto vms = snapshot::loadWorld(host, {vm_cfg}, world_path);
        if (!vms.ok() || vms->size() != 1) {
            std::printf("[snap]  loadWorld failed\n");
            return 1;
        }
        auto flag = (*vms)[0]->read64(GuestPhysAddr(0x13370));
        std::printf("[snap]  restored: guest flag reads %#llx (%s)\n",
                    static_cast<unsigned long long>(flag.valueOr(0)),
                    flag.ok() && *flag == 0xf1a6ull ? "intact"
                                                    : "MISMATCH");
        if (!flag.ok() || *flag != 0xf1a6ull)
            return 1;
    }
    std::remove(world_path.c_str());

    // Checkpoint/kill/resume: the straight campaign and the one that
    // "crashed" after 2 trials must agree on every field.
    std::printf("[ckpt]  straight vs. kill-at-2-then-resume "
                "campaign...\n");
    snapshot::ResumeIdentityOptions options;
    options.attempts = 4;
    options.threads = 2;
    options.checkpointEvery = 1;
    options.killAfterTrials = 2;
    options.checkpointPath = "/tmp/vm_escape_demo.ckpt";

    sys::SystemConfig atk_cfg =
        sys::SystemConfig::s1(seed).withMemory(1_GiB);
    atk_cfg.dram.fault.weakCellsPerRow *= 8; // keep the demo short
    attack::AttackConfig mc_cfg;
    mc_cfg.steering.exhaustMappings = 2'500;
    const snapshot::ResumeIdentityReport report =
        snapshot::verifyResumeIdentity(atk_cfg, vm_cfg,
                                       atk_cfg.dram.mapping, mc_cfg,
                                       options);
    std::printf("[ckpt]  killed midway: %s; %u trial(s) restored from "
                "the checkpoint\n",
                report.killedMidway ? "yes" : "no (finished early)",
                report.resumedTrials);
    if (!report.identical) {
        std::printf("[ckpt]  MISMATCH in:");
        for (const std::string &field : report.mismatches)
            std::printf(" %s", field.c_str());
        std::printf("\n");
        return 1;
    }
    std::printf("[ckpt]  bitwise identical -- attempts, durations and "
                "Welford statistics all match\n");
    std::printf("\nCrash-safety contract holds: kill -9 mid-campaign "
                "loses at most one checkpoint block.\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 5;
    unsigned attempts = 0;
    unsigned threads = 0; // all cores
    bool snapshot_demo = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--attempts=", 11) == 0)
            attempts = static_cast<unsigned>(
                std::strtoul(argv[i] + 11, nullptr, 0));
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 0));
        else if (std::strcmp(argv[i], "--snapshot-demo") == 0)
            snapshot_demo = true;
        else
            seed = std::strtoull(argv[i], nullptr, 0);
    }
    if (snapshot_demo)
        return runSnapshotDemo(seed);
    sys::SystemConfig config =
        sys::SystemConfig::s1(seed).withMemory(2_GiB);
    sys::HostSystem host(config);

    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 128_MiB;
    vm_cfg.virtioMemRegionSize = 2_GiB;
    vm_cfg.virtioMemPlugged = 1_GiB;
    auto machine = host.createVm(vm_cfg);

    std::printf("== VM escape demo (deterministic flip) ==\n\n");

    // The hypervisor secret the guest must not be able to read.
    auto secret_frame = host.buddy().allocPages(
        0, mm::MigrateType::Unmovable, mm::PageUse::KernelData);
    const HostPhysAddr secret_addr(*secret_frame * kPageSize + 0x7c0);
    const uint64_t secret = 0x48595045'52564953ull; // "HYPERVIS"
    host.dram().write64(secret_addr, secret);
    std::printf("[setup] hypervisor secret planted at host PA %#llx\n",
                static_cast<unsigned long long>(secret_addr.value()));

    // Steer: spray EPT pages over the whole guest.
    attack::PageSteering steering(*machine, host.clock(),
                                  attack::SteeringConfig{});
    const uint64_t demotions =
        steering.sprayEptes(machine->memorySize(), {});
    std::printf("[steer] %llu hugepage demotions -> %llu EPT pages\n",
                static_cast<unsigned long long>(demotions),
                static_cast<unsigned long long>(
                    machine->mmu().eptPageCount()));

    // Mark all pages with magic values.
    attack::Exploiter exploiter(*machine, host.clock(),
                                attack::ExploitConfig{});
    exploiter.markPages(machine->hugePageGpas());
    std::printf("[mark]  per-page magic values written\n");

    // Induce the lucky flip: point one sprayed page's EPTE at another
    // EPT page (this is the step Rowhammer performs probabilistically
    // in the real attack).
    const auto &tables = machine->mmu().eptPageFrames();
    const Pfn own_pt = tables[tables.size() - 2];
    const Pfn target_pt = tables[tables.size() - 1];
    const HostPhysAddr entry_addr(own_pt * kPageSize + 9 * 8);
    host.dram().backend().write64(
        entry_addr, kvm::EptEntry::leaf4k(target_pt, false).raw());
    std::printf("[flip]  induced: EPTE at host PA %#llx now points "
                "to EPT page PFN %llu\n",
                static_cast<unsigned long long>(entry_addr.value()),
                static_cast<unsigned long long>(target_pt));

    // Detection: whose magic value broke?
    const std::vector<GuestPhysAddr> changed =
        exploiter.detectMappingChanges();
    if (changed.empty()) {
        std::printf("[scan]  no mapping change detected?!\n");
        return 1;
    }
    std::printf("[scan]  mapping change detected at GPA %#llx\n",
                static_cast<unsigned long long>(changed[0].value()));

    // Identification + validation + escalation.
    if (!exploiter.looksLikeEptPage(changed[0])) {
        std::printf("[ident] page does not look like an EPT page\n");
        return 1;
    }
    std::printf("[ident] exposed page matches the EPTE format\n");
    auto escalation = exploiter.validateAndEscalate(changed[0]);
    if (!escalation.ok()) {
        std::printf("[valid] not this VM's EPT page\n");
        return 1;
    }
    std::printf("[valid] confirmed own EPT page: entry %u controls "
                "GPA %#llx\n",
                escalation->entryIndex,
                static_cast<unsigned long long>(
                    escalation->victimWindow.value()));

    // Arbitrary host memory access.
    auto leaked = exploiter.readHost(*escalation, secret_addr);
    std::printf("[read]  host PA %#llx through the guest window: "
                "%#llx (%s)\n",
                static_cast<unsigned long long>(secret_addr.value()),
                static_cast<unsigned long long>(leaked.valueOr(0)),
                leaked.ok() && *leaked == secret
                    ? "the hypervisor secret -- escape complete"
                    : "mismatch");
    if (!leaked.ok() || *leaked != secret)
        return 1;

    const hh::base::Status wiped =
        exploiter.writeHost(*escalation, secret_addr, 0);
    if (!wiped.ok()) {
        std::printf("[write] overwrite failed: %s\n",
                    hh::base::errorName(wiped.error()));
        return 1;
    }
    std::printf("[write] secret overwritten from inside the VM\n");
    std::printf("\nThe guest now has arbitrary read/write over host "
                "physical memory (Section 4.3).\n");
    host.buddy().freePages(*secret_frame, 0);

    if (attempts == 0)
        return 0;

    // Optional coda: the real lottery, on the Monte-Carlo engine.
    // Each attempt is an independent trial on its own cloned host;
    // --threads only changes the wall clock, never the outcome.
    std::printf("\n== Monte-Carlo batch: %u attempt(s), %u thread(s) "
                "==\n",
                attempts,
                threads ? threads : base::ThreadPool::defaultThreads());
    machine.reset();
    sys::SystemConfig mc_config =
        sys::SystemConfig::s1(seed).withMemory(1_GiB);
    mc_config.dram.fault.weakCellsPerRow *= 8; // keep the demo short
    sys::HostSystem mc_host(mc_config);
    vm::VmConfig mc_vm;
    mc_vm.bootMemBytes = 64_MiB;
    mc_vm.virtioMemRegionSize = 1_GiB;
    mc_vm.virtioMemPlugged = 640_MiB;
    attack::AttackConfig mc_cfg;
    mc_cfg.steering.exhaustMappings = 2'500;
    attack::HyperHammerAttack batch(mc_host, mc_vm,
                                    mc_host.dram().mapping(), mc_cfg);
    (void)batch.profilePhase();
    if (batch.hostProfile().empty()) {
        std::printf("[mc]    no usable bits at this seed; try another\n");
        return 0;
    }
    const attack::AttackResult mc =
        batch.runAttempts(attempts, threads);
    std::printf("[mc]    %u attempt(s), %s; avg %.1f s/attempt "
                "(virtual), %.1f flips and %.1f bits targeted per "
                "attempt\n",
                mc.attempts,
                mc.success ? "escaped" : "no escape yet",
                mc.stats.attemptSeconds.mean(),
                mc.stats.changedPages.mean(),
                mc.stats.bitsTargeted.mean());
    return 0;
}
