/**
 * @file
 * Example: the attacker's offline preparation workflow (Section 5.1).
 *
 * On a machine identical to the target, a researcher would:
 *   1. reverse engineer the DRAM bank function with DRAMDig,
 *   2. verify the THP bit-preservation property the attack needs,
 *   3. find an effective hammer pattern with TRRespass,
 *   4. profile memory for exploitable bits.
 *
 * This example runs all four steps against a simulated S1-class
 * machine and prints a census of what an attacker would learn.
 *
 * Usage: profile_dimm [seed] [host-gib]
 */

#include <cstdio>
#include <cstdlib>

#include "hyperhammer/hyperhammer.h"

using namespace hh;

int
main(int argc, char **argv)
{
    const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                   : 7;
    const uint64_t gib = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                  : 2;

    sys::SystemConfig config =
        sys::SystemConfig::s1(seed).withMemory(gib * 1_GiB);
    sys::HostSystem host(config);

    std::printf("== DIMM preparation workflow (%s, %llu GiB) ==\n\n",
                config.name.c_str(),
                static_cast<unsigned long long>(gib));

    // 1. DRAMDig.
    std::printf("[1/4] DRAMDig: timing-based bank-function "
                "recovery...\n");
    analysis::DramDig dig(host.dram(), analysis::DramDigConfig{});
    const analysis::DramDigResult recovered = dig.run();
    if (!recovered.recovered()) {
        std::printf("      recovery failed\n");
        return 1;
    }
    const dram::AddressMapping mapping(recovered.bankMasks, 18, 33);
    std::printf("      recovered: %s (%llu timed accesses)\n",
                mapping.describe().c_str(),
                static_cast<unsigned long long>(
                    recovered.timedAccesses));

    // 2. THP property.
    std::printf("[2/4] THP check: bank bits preserved by 2 MB "
                "translation? %s\n",
                mapping.bankBitsPreservedBy(21) ? "yes" : "NO");

    // 3. TRRespass.
    std::printf("[3/4] TRRespass: minimal effective pattern...\n");
    analysis::TrrespassConfig trr_cfg;
    trr_cfg.maxAggressorRows = 6;
    // Realistic weak-cell densities are sparse (a few hundred cells
    // per 12 GB); each pattern size needs many placements to see one.
    trr_cfg.trialsPerSize = 1'500;
    analysis::Trrespass finder(host.dram(), trr_cfg);
    const analysis::TrrespassResult pattern = finder.run();
    if (pattern.foundPattern()) {
        std::printf("      %u same-bank aggressor rows suffice "
                    "(single-sided works: %s)\n",
                    pattern.effectiveAggressorRows,
                    pattern.effectiveAggressorRows <= 2 ? "yes" : "no");
    } else {
        std::printf("      no flips up to %u rows (TRR-protected "
                    "DIMM?)\n", trr_cfg.maxAggressorRows);
        return 1;
    }

    // 4. Profile from inside a VM.
    std::printf("[4/4] profiling a guest VM's memory...\n");
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = gib * 1_GiB / 16;
    vm_cfg.virtioMemRegionSize = gib * 1_GiB;
    vm_cfg.virtioMemPlugged = gib * 1_GiB * 12 / 16;
    auto machine = host.createVm(vm_cfg);

    attack::MemoryProfiler profiler(*machine, host.clock(), mapping,
                                    attack::ProfilerConfig{});
    std::vector<GuestPhysAddr> region;
    for (GuestPhysAddr hp : machine->hugePageGpas()) {
        if (machine->memDevice_().contains(hp))
            region.push_back(hp);
    }
    const attack::ProfileResult profile = profiler.profile(region);

    analysis::TextTable table({"Metric", "Value"});
    table.addRow({"profiled region",
                  std::to_string(region.size() * 2) + " MiB"});
    table.addRow({"combinations hammered",
                  analysis::formatCount(profile.combinations)});
    table.addRow({"virtual time",
                  base::SimClock::format(profile.elapsed)});
    table.addRow({"total flips",
                  analysis::formatCount(profile.totalFlips())});
    table.addRow({"1->0 / 0->1",
                  analysis::formatCount(profile.countOneToZero()) + " / "
                      + analysis::formatCount(profile.countZeroToOne())});
    table.addRow({"stable",
                  analysis::formatCount(profile.countStable())});
    table.addRow({"exploitable (EPTE PFN bits)",
                  analysis::formatCount(profile.countExploitable())});
    table.addRow({"usable for steering",
                  analysis::formatCount(
                      profile.exploitableBits().size())});
    std::printf("\n%s", table.render().c_str());

    // Show a few concrete bits.
    std::printf("\nFirst usable bits (guest-physical view):\n");
    unsigned shown = 0;
    for (const attack::VulnerableBit &bit : profile.exploitableBits()) {
        if (++shown > 5)
            break;
        std::printf("  GPA %#llx bit %u (%s, %s): hammer %#llx + "
                    "%#llx\n",
                    static_cast<unsigned long long>(bit.wordGpa.value()),
                    bit.bitInWord,
                    bit.direction == dram::FlipDirection::OneToZero
                        ? "1->0" : "0->1",
                    bit.stable ? "stable" : "unstable",
                    static_cast<unsigned long long>(
                        bit.aggressors[0].value()),
                    static_cast<unsigned long long>(
                        bit.aggressors[1].value()));
    }
    return 0;
}
