/**
 * @file
 * Example: Page Steering step by step (Section 4.2, Figure 1).
 *
 * Walks the three steering steps against a live host, printing the
 * free-list state the attacker is manipulating after each one, and
 * finishes with a host-side census showing EPT pages sitting on the
 * frames the VM "voluntarily" released.
 *
 * Usage: steering_lab [seed] [host-gib]
 */

#include <cstdio>
#include <cstdlib>

#include "hyperhammer/hyperhammer.h"

using namespace hh;

namespace {

void
printFreeListState(sys::HostSystem &host, const char *moment)
{
    const mm::PageTypeInfo info = host.pageTypeInfo();
    std::printf("  [%s]\n", moment);
    std::printf("    unmovable: %6llu pages below order 9, %4llu "
                "order-9+ blocks\n",
                static_cast<unsigned long long>(info.pagesBelowOrder(
                    mm::MigrateType::Unmovable, 9)),
                static_cast<unsigned long long>(
                    info.blockCount(mm::MigrateType::Unmovable, 9)
                    + info.blockCount(mm::MigrateType::Unmovable, 10)));
    std::printf("    movable:   %6llu pages below order 9, %4llu "
                "order-9+ blocks\n",
                static_cast<unsigned long long>(info.pagesBelowOrder(
                    mm::MigrateType::Movable, 9)),
                static_cast<unsigned long long>(
                    info.blockCount(mm::MigrateType::Movable, 9)
                    + info.blockCount(mm::MigrateType::Movable, 10)));
    std::printf("    noise pages (attack metric): %llu\n",
                static_cast<unsigned long long>(host.noisePages()));
}

} // namespace

int
main(int argc, char **argv)
{
    const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                   : 3;
    const uint64_t gib = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                  : 4;

    sys::SystemConfig config =
        sys::SystemConfig::s1(seed).withMemory(gib * 1_GiB);
    sys::HostSystem host(config);

    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = gib * 1_GiB / 16;
    vm_cfg.virtioMemRegionSize = gib * 1_GiB;
    vm_cfg.virtioMemPlugged = gib * 1_GiB * 12 / 16;
    auto machine = host.createVm(vm_cfg);

    std::printf("== Page Steering lab (%llu GiB host, %llu MiB "
                "guest) ==\n\n",
                static_cast<unsigned long long>(gib),
                static_cast<unsigned long long>(
                    machine->memorySize() / 1_MiB));
    printFreeListState(host, "after VM boot");

    // STEP 1: exhaust noise pages via the vIOMMU.
    attack::SteeringConfig steer_cfg;
    steer_cfg.exhaustMappings = static_cast<uint32_t>(
        60'000ull * gib / 16);
    attack::PageSteering steering(*machine, host.clock(), steer_cfg);
    std::printf("\nSTEP 1: mapping one guest page at %u IOVAs, "
                "2 MiB apart (one IOPT page each)...\n",
                steer_cfg.exhaustMappings);
    const uint64_t mappings = steering.exhaustNoisePages();
    std::printf("  created %llu mappings; IOPT pages now held: "
                "%llu\n",
                static_cast<unsigned long long>(mappings),
                static_cast<unsigned long long>(
                    machine->vfio()->ioptPageCount()));
    printFreeListState(host, "after exhaustion");

    // STEP 2: voluntarily release two "vulnerable" sub-blocks.
    std::printf("\nSTEP 2: voluntary virtio-mem releases (no "
                "hypervisor request)...\n");
    machine->memDriver().setSuppressAutoPlug(true);
    auto &device = machine->memDevice_();
    std::vector<Pfn> released_blocks;
    for (virtio::SubBlockId sb : {19ull, 77ull}) {
        auto hpa = machine->debugTranslate(device.subBlockGpa(sb));
        if (machine->memDriver()
                .unplugSpecific(device.subBlockGpa(sb))
                .ok()) {
            released_blocks.push_back(hpa->pfn());
            std::printf("  released sub-block %llu (host PFN %llu, "
                        "order-9 MIGRATE_UNMOVABLE)\n",
                        static_cast<unsigned long long>(sb),
                        static_cast<unsigned long long>(hpa->pfn()));
        }
    }
    printFreeListState(host, "after releases");

    // STEP 3: spray EPTEs by executing the idling function.
    std::printf("\nSTEP 3: executing the idling function on every "
                "remaining hugepage (NX-hugepage demotions)...\n");
    const uint64_t demotions =
        steering.sprayEptes(machine->memorySize(), {});
    std::printf("  %llu demotions -> %llu EPT pages in the system\n",
                static_cast<unsigned long long>(demotions),
                static_cast<unsigned long long>(
                    machine->mmu().eptPageCount()));
    printFreeListState(host, "after spray");

    // Census: what sits on the released frames now?
    std::printf("\nResult: host-side census of the released "
                "blocks\n");
    for (Pfn block : released_blocks) {
        unsigned ept = 0;
        unsigned kernel = 0;
        unsigned free_pages = 0;
        for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
            const mm::PageFrame &frame = host.buddy().frame(block + i);
            if (frame.free)
                ++free_pages;
            else if (frame.use == mm::PageUse::EptPage)
                ++ept;
            else if (frame.use == mm::PageUse::KernelData)
                ++kernel;
        }
        std::printf("  block at PFN %llu: %u EPT pages, %u split "
                    "metadata, %u still free\n",
                    static_cast<unsigned long long>(block), ept,
                    kernel, free_pages);
    }
    std::printf("\nEvery EPT page on a released frame is a page the "
                "VM can potentially corrupt with Rowhammer.\n");
    return 0;
}
