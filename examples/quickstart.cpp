/**
 * @file
 * Quickstart: run a complete (scaled-down) HyperHammer attack.
 *
 * Builds an S1-style host at 2 GB, spawns a 1.625 GB attacker VM,
 * profiles its memory for exploitable Rowhammer bits, and runs the
 * steer-hammer-escalate loop until the VM reads a secret planted in
 * host kernel memory. All reported times are virtual (simulated).
 *
 * Like the real attack, each attempt succeeds only with small
 * probability (Section 5.3.1); the default attempt budget usually
 * ends without an escape and prints the measured rates plus the
 * expected cost instead -- exactly the paper's own story. Pass a
 * larger budget to hunt for the escape, or see vm_escape_demo for a
 * deterministic walkthrough of the final stage.
 *
 * Usage: quickstart [seed] [max-attempts]
 */

#include <cstdio>
#include <cstdlib>

#include "hyperhammer/hyperhammer.h"

using namespace hh;

int
main(int argc, char **argv)
{
    const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                   : 42;
    const unsigned max_attempts = argc > 2
        ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 0))
        : 150;

    // A scaled-down S1: same DRAM geometry behaviour, 2 GB host.
    sys::SystemConfig config = sys::SystemConfig::s1(seed)
        .withMemory(2_GiB);
    sys::HostSystem host(config);

    // The attacker VM owns most of the host's memory, like the
    // paper's 13-of-16 GB setup (the success probability scales with
    // this ratio, Section 5.3.1).
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 128_MiB;
    vm_cfg.virtioMemRegionSize = 2_GiB;
    vm_cfg.virtioMemPlugged = 1_GiB + 512_MiB;

    attack::AttackConfig attack_cfg;
    attack_cfg.bitsPerAttempt = 12;
    attack_cfg.maxAttempts = max_attempts;
    attack_cfg.steering.exhaustMappings = 10'000;

    attack::HyperHammerAttack attack(
        host, vm_cfg, host.dram().mapping(), attack_cfg);

    std::printf("== HyperHammer quickstart (host %s, %.1f GB) ==\n",
                config.name.c_str(),
                static_cast<double>(config.dram.totalBytes) / 1_GiB);

    std::printf("[1/3] profiling guest memory...\n");
    const attack::ProfileResult profile = attack.profilePhase();
    std::printf("      %llu flips (%llu 1->0, %llu 0->1), "
                "%llu stable, %llu exploitable, took %s (virtual)\n",
                (unsigned long long)profile.totalFlips(),
                (unsigned long long)profile.countOneToZero(),
                (unsigned long long)profile.countZeroToOne(),
                (unsigned long long)profile.countStable(),
                (unsigned long long)profile.countExploitable(),
                base::SimClock::format(profile.elapsed).c_str());
    if (profile.countExploitable() == 0) {
        std::printf("no exploitable bits with this seed; try another\n");
        return 1;
    }

    std::printf("[2/3] attack loop (steer, hammer, escalate)...\n");
    const attack::AttackResult result = attack.run();

    std::printf("[3/3] result: %s after %u attempts, %s (virtual), "
                "avg %.1f s/attempt\n",
                result.success ? "SUCCESS" : "no escalation",
                result.attempts,
                base::SimClock::format(result.totalTime).c_str(),
                result.avgAttemptSeconds());
    if (result.success) {
        std::printf("      the VM read the hypervisor secret at host "
                    "PA %#llx through its own page tables\n",
                    (unsigned long long)attack.secretAddress().value());
    } else {
        uint64_t flips = 0;
        for (const attack::AttemptOutcome &o : result.outcomes)
            flips += o.changedPages;
        const double per_attempt = static_cast<double>(flips)
            / static_cast<double>(result.attempts);
        // P(success/attempt) ~ flips/attempt x VM/(512 x host)
        // (Section 5.3.1's lottery applied to each observed flip).
        const double vm_ratio =
            static_cast<double>(vm_cfg.bootMemBytes
                                + vm_cfg.virtioMemPlugged)
            / static_cast<double>(config.dram.totalBytes);
        const double p = per_attempt * vm_ratio / 512.0;
        std::printf("      %.2f EPTE flips per attempt observed; as "
                    "in the paper, a full escape needs hundreds of "
                    "attempts (estimated P ~ %.1e per attempt). Rerun "
                    "with a bigger budget, or see vm_escape_demo.\n",
                    per_attempt, p);
    }
    return 0;
}
